/* dlopen/dlsym primitives for the native execution backend (Native).
 *
 * The OCaml side hands us the path of a compiled kernel .so and an
 * array of Bigarray.Array1 buffers; we resolve the fixed entry symbol
 * and call it with the raw data pointers.  Bigarray data is allocated
 * outside the OCaml heap and never moves, so the pointers stay valid
 * while the values are rooted — we extract them before releasing the
 * runtime lock for the (potentially millisecond-scale) kernel call.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/bigarray.h>
#include <caml/signals.h>

#include <dlfcn.h>

#define POLYMG_MAX_BUFS 64

CAMLprim value polymg_native_dlopen(value vpath)
{
  CAMLparam1(vpath);
  void *h;
  (void) dlerror();
  h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *err = dlerror();
    caml_failwith(err != NULL ? err : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat) h));
}

CAMLprim value polymg_native_dlsym(value vhandle, value vname)
{
  CAMLparam2(vhandle, vname);
  void *h = (void *) Nativeint_val(vhandle);
  void *sym;
  (void) dlerror();
  sym = dlsym(h, String_val(vname));
  if (sym == NULL) {
    const char *err = dlerror();
    caml_failwith(err != NULL ? err : "dlsym failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat) sym));
}

CAMLprim value polymg_native_dlclose(value vhandle)
{
  CAMLparam1(vhandle);
  dlclose((void *) Nativeint_val(vhandle));
  CAMLreturn(Val_unit);
}

/* Call int (*entry)(double **) with the data pointers of an array of
   float64 Bigarrays.  Returns the entry's return code. */
CAMLprim value polymg_native_call(value ventry, value vbufs)
{
  CAMLparam2(ventry, vbufs);
  double *ptrs[POLYMG_MAX_BUFS];
  int n = Wosize_val(vbufs);
  int i, rc;
  int (*entry)(double **) = (int (*)(double **)) Nativeint_val(ventry);
  if (n > POLYMG_MAX_BUFS)
    caml_invalid_argument("polymg_native_call: too many buffers");
  for (i = 0; i < n; i++)
    ptrs[i] = (double *) Caml_ba_data_val(Field(vbufs, i));
  caml_enter_blocking_section();
  rc = entry(ptrs);
  caml_leave_blocking_section();
  CAMLreturn(Val_int(rc));
}
