(** Optimizer configuration: which of the paper's code versions to build.

    The presets correspond to the compared variants of §4.1:
    {!naive} (polymg-naive), {!opt} (polymg-opt), {!opt_plus}
    (polymg-opt+), {!dtile_opt_plus} (polymg-dtile-opt+).  Individual
    feature flags can be toggled from a preset — this is how the storage
    breakdown of Fig. 11b is produced. *)

type smoother_path =
  | Overlapped_smoother  (** smoothing steps fused into overlapped tiles *)
  | Diamond_smoother of { sigma : int }
      (** pre/post smoothing chains executed with diamond time tiling *)
  | Skewed_smoother of { tau : int; sigma : int }
      (** smoothing chains executed with time-skewed (wavefront) tiling —
          the §5 comparison scheme with pipelined startup *)

type backend =
  | Interp  (** the plan interpreter ({!Exec.run}) — always available *)
  | Native
      (** emitted C compiled to a shared object and called directly
          ({!Native}); requires a system C compiler and an emittable
          (all-affine) plan, and fails the solve when either is missing *)
  | Auto
      (** try {!Native}, fall back to {!Interp} when no compiler exists
          or compilation fails — the fallback is observable (the
          [native.fallbacks] counter plus a flight-recorder incident),
          never silent *)

type t = {
  fuse : bool;  (** auto-grouping on; off = one group per stage *)
  tile_2d : int array;  (** overlapped tile sizes for rank-2 groups *)
  tile_3d : int array;
  naive_rows : int;
      (** for unfused plans: rows per parallel chunk of the outer loop
          (the default, 128, behaves like the paper's plain
          [parallel for] over the outer dimension) *)
  group_size_limit : int;  (** max stages per fused group *)
  overlap_threshold : float;
      (** max redundant-computation fraction tolerated per group *)
  scratch_reuse : bool;  (** §3.2.1 intra-group scratchpad reuse *)
  scratch_class_threshold : int;
      (** ± size tolerance (elements/dim) for scratchpad storage classes *)
  array_reuse : bool;  (** §3.2.2 inter-group full-array reuse *)
  pool : bool;  (** §3.2.3 pooled allocation across cycles *)
  smoother : smoother_path;
  walk_kernels : bool;
      (** dispatch linear stages to the specialized walk-form inner loops
          (the register shape of generated C); off = generic per-term
          cursor loops.  An ablation knob for the codegen-quality axis. *)
  check_plan : bool;
      (** run the {!Plan_check} storage-safety/halo validation pass over
          every plan built through {!Plan_check.build} (the solver path).
          Off in the presets; tests and guarded runs turn it on. *)
  mem_budget : int option;
      (** resource governance: byte budget for the runtime working
          footprint (pooled full arrays, diamond modulo buffers, and
          per-domain scratchpads).  [None] (the presets) plans
          unconstrained; [Some b] makes {!Govern.decide} walk the
          variant ladder down to the most aggressive rung whose modelled
          footprint fits, and arms {!Repro_runtime.Mempool} budget
          enforcement at execution time. *)
  deadline : float option;
      (** resource governance: soft per-group (per fused stage) deadline
          in seconds.  [None] runs unbounded; [Some s] arms the
          {!Repro_runtime.Watchdog} around every group execution, with
          cooperative cancellation checked at tile boundaries — a hung
          or pathologically slow stage raises
          {!Repro_runtime.Watchdog.Deadline_exceeded} instead of
          blocking the solve forever. *)
  backend : backend;
      (** execution backend selector.  [Interp] in every preset; the
          CLIs and bench harness override it.  Excluded from {!pp} (and
          therefore from plan digests): it changes how a plan runs, not
          what it computes. *)
}

val naive : t
val opt : t
val opt_plus : t
val dtile_opt_plus : t

val variant_of_string : string -> t option
(** Recognizes ["naive"], ["opt"], ["opt+"], ["dtile-opt+"]. *)

val name : t -> string
(** Best-effort name of the matching preset, or ["custom"]. *)

val with_tiles : t -> t2:int array -> t3:int array -> t

val backend_of_string : string -> backend option
(** Recognizes ["interp"], ["native"], ["auto"]. *)

val backend_name : backend -> string

val pp : Format.formatter -> t -> unit
