(** C code emission from plans.

    PolyMG generates C+OpenMP; this engine executes plans directly, but
    the correspondence is kept inspectable {e and checkable}: [emit]
    prints, for any plan, the C the paper's backend would produce —
    pooled full-array allocations,
    [#pragma omp parallel for collapse(d)] tile loops, per-thread
    scratchpad declarations with their user lists, and the per-stage loop
    nests with min/max-clamped overlapped-tile bounds (the shape of
    Fig. 8; groups whose exact per-tile demand regions are not affine in
    the tile coordinates fall back to static bound tables).  The emitted
    code computes what the engine computes: ghost rims are filled, own
    slices are published to the full arrays, diamond chains run as their
    equivalent untiled time loop, and outputs are returned through [out].

    [driver_to_string] additionally wraps the pipeline in a
    self-contained [main()] — deterministic FNV-1a input fill, binary
    grid dump — so the artifact can be compiled, executed and diffed
    against the engine (the conformance harness's run-equivalence leg).
    Used for the generated-lines-of-code column of Table 3, by
    [polymg_dump], and by [Repro_mg.Conformance]. *)

val emit : Format.formatter -> Plan.t -> unit

val to_string : Plan.t -> string

val line_count : Plan.t -> int
(** Lines of the emitted C — Table 3's "Lines of gen. code". *)

val pipeline_symbol : Plan.t -> string
(** Name of the emitted pipeline function ([pipeline_<name>]), as
    declared by {!emit} — the symbol {!Native} wraps and calls. *)

val runnable : Plan.t -> (unit, string) result
(** [Ok ()] when every compiled kernel is affine ([Lin]) and every
    diamond chain has an emittable init source, i.e. the emitted C is a
    complete program rather than a sketch with [eval_point()] holes. *)

val driver_to_string : Plan.t -> (string, string) result
(** The pipeline plus allocator shims and a [main()] that fills the
    inputs deterministically (FNV-1a over the multi-index, mirrored by
    [Repro_mg.Conformance.fill_val]), runs the pipeline, and writes every
    output grid — ghost layers included — as raw doubles to the file
    named by [argv[1]].  [Error] when {!runnable} fails. *)
