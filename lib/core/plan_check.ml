open Repro_ir
open Repro_poly
module Telemetry = Repro_runtime.Telemetry

let c_runs = Telemetry.counter "plan_check.runs"
let c_issues = Telemetry.counter "plan_check.issues"

let concrete_sizes ~n (f : Func.t) =
  Array.map (fun s -> Sizeexpr.eval ~n s) f.Func.sizes

let full_len sizes = Array.fold_left (fun a s -> a * (s + 2)) 1 sizes

let group_members = function
  | Plan.G_tiled tg -> tg.Plan.members
  | Plan.G_diamond dg -> dg.Plan.steps

(* (func id, array slot) pairs a group publishes. *)
let writes_of g =
  Array.to_list (group_members g)
  |> List.filter_map (fun (m : Plan.member) ->
         Option.map (fun a -> (m.Plan.func.Func.id, a)) m.Plan.array_id)

(* (producer func id, array slot) pairs a group reads from full arrays. *)
let array_reads_of g =
  let of_member ?skip (m : Plan.member) =
    let acc = ref [] in
    Array.iteri
      (fun i src ->
        if Some i <> skip then
          match src with
          | Plan.P_array a ->
            acc := (m.Plan.compiled.Compile.producers.(i), a) :: !acc
          | Plan.P_input _ | Plan.P_member _ -> ())
      m.Plan.src_of;
    !acc
  in
  match g with
  | Plan.G_tiled tg ->
    Array.to_list tg.Plan.members |> List.concat_map of_member
  | Plan.G_diamond dg ->
    let step_reads =
      Array.to_list
        (Array.mapi
           (fun step m ->
             let skip =
               if dg.Plan.prev_pos.(step) >= 0 then
                 Some dg.Plan.prev_pos.(step)
               else None
             in
             of_member ?skip m)
           dg.Plan.steps)
      |> List.concat
    in
    let init_read =
      match dg.Plan.init_src with
      | Some (Plan.P_array a) ->
        let m0 = dg.Plan.steps.(0) in
        [ (m0.Plan.compiled.Compile.producers.(dg.Plan.prev_pos.(0)), a) ]
      | Some (Plan.P_input _) | Some (Plan.P_member _) | None -> []
    in
    init_read @ step_reads

(* ---- full-array storage soundness --------------------------------- *)
(* Liveness is recomputed independently of Storage.remap by simulating
   the group sequence: each array slot tracks which stage's value it
   currently holds; every read must find its producer's value intact,
   and no group may overwrite a slot another stage's value is read from
   in that same group. *)

let check_arrays (plan : Plan.t) ~fname ~add =
  let issue fmt = Printf.ksprintf add fmt in
  let owner = Array.make (Array.length plan.Plan.arrays) None in
  Array.iteri
    (fun gi g ->
      let reads = array_reads_of g in
      let writes = writes_of g in
      List.iter
        (fun (pid, a) ->
          let info = plan.Plan.arrays.(a) in
          if info.Plan.first_group > gi then
            issue "group %d reads array#%d before its acquire group %d" gi a
              info.Plan.first_group;
          if info.Plan.last_group < gi && not info.Plan.output then
            issue "group %d reads array#%d after its release group %d" gi a
              info.Plan.last_group;
          (match owner.(a) with
          | Some o when o = pid -> ()
          | Some o ->
            issue
              "group %d reads %s from array#%d, but the slot holds %s's \
               value (storage aliasing)"
              gi (fname pid) a (fname o)
          | None ->
            issue "group %d reads %s from array#%d before any write" gi
              (fname pid) a);
          List.iter
            (fun (wfid, wa) ->
              if wa = a && wfid <> pid then
                issue
                  "group %d writes %s into array#%d while %s's value is \
                   still read from it in the same group"
                  gi (fname wfid) a (fname pid))
            writes)
        reads;
      let rec dup = function
        | [] -> ()
        | (fid, a) :: rest ->
          List.iter
            (fun (fid2, a2) ->
              if a = a2 && fid <> fid2 then
                issue "group %d writes both %s and %s into array#%d" gi
                  (fname fid) (fname fid2) a)
            rest;
          dup rest
      in
      dup writes;
      List.iter
        (fun (fid, a) ->
          let info = plan.Plan.arrays.(a) in
          if info.Plan.first_group > gi then
            issue "group %d writes array#%d before its acquire group %d" gi a
              info.Plan.first_group;
          if info.Plan.last_group < gi && not info.Plan.output then
            issue "group %d writes array#%d after its release group %d" gi a
              info.Plan.last_group;
          let need =
            full_len
              (concrete_sizes ~n:plan.Plan.n
                 (Pipeline.func plan.Plan.pipeline fid))
          in
          if need > info.Plan.len then
            issue "array#%d holds %d elements but %s needs %d" a info.Plan.len
              (fname fid) need;
          owner.(a) <- Some fid)
        writes)
    plan.Plan.groups;
  List.iter
    (fun (fid, a) ->
      if not plan.Plan.arrays.(a).Plan.output then
        issue "pipeline output %s mapped to non-output array#%d" (fname fid) a;
      match owner.(a) with
      | Some o when o = fid -> ()
      | Some o ->
        issue "array#%d ends holding %s, not pipeline output %s" a (fname o)
          (fname fid)
      | None -> issue "pipeline output %s is never written" (fname fid))
    plan.Plan.output_arrays

(* ---- scratchpad slot soundness ------------------------------------ *)
(* Within a tiled group, member [p]'s scratchpad must survive until its
   last in-group reader; a later member may only be remapped onto the
   same slot strictly after that. *)

let check_scratch (tg : Plan.tiled_group) ~add =
  let issue fmt = Printf.ksprintf add fmt in
  let nm = Array.length tg.Plan.members in
  let readers = Array.make nm [] in
  Array.iteri
    (fun q (m : Plan.member) ->
      Array.iter
        (function
          | Plan.P_member p -> readers.(p) <- q :: readers.(p)
          | Plan.P_array _ | Plan.P_input _ -> ())
        m.Plan.src_of)
    tg.Plan.members;
  for p = 0 to nm - 1 do
    if readers.(p) <> [] && tg.Plan.members.(p).Plan.scratch_slot = None then
      issue "group %d: %s is read in-group but has no scratchpad slot"
        tg.Plan.gid
        tg.Plan.members.(p).Plan.func.Func.name
  done;
  for p2 = 0 to nm - 1 do
    match tg.Plan.members.(p2).Plan.scratch_slot with
    | None -> ()
    | Some s2 ->
      if s2 < 0 || s2 >= Array.length tg.Plan.scratch_slot_len then
        issue "group %d: %s uses out-of-range scratch slot %d" tg.Plan.gid
          tg.Plan.members.(p2).Plan.func.Func.name s2
      else
        for p1 = 0 to p2 - 1 do
          if tg.Plan.members.(p1).Plan.scratch_slot = Some s2 then begin
            let last_read =
              List.fold_left Int.max p1 readers.(p1)
            in
            if last_read >= p2 then
              issue
                "group %d: scratch slot %d is overwritten by %s while %s \
                 is still read (last in-group reader at position %d)"
                tg.Plan.gid s2
                tg.Plan.members.(p2).Plan.func.Func.name
                tg.Plan.members.(p1).Plan.func.Func.name last_read
          end
        done
  done

(* ---- per-tile geometry: halo containment and scratch capacity ----- *)

let check_geometry (plan : Plan.t) (tg : Plan.tiled_group) ~add =
  let issue fmt = Printf.ksprintf add fmt in
  let capacity_flagged = Array.make (Array.length tg.Plan.scratch_slot_len) false in
  let halo_flagged = Hashtbl.create 8 in
  Array.iter
    (fun tile ->
      let req = Regions.demand tg.Plan.geom ~tile in
      Array.iteri
        (fun p (_, region) ->
          let m = tg.Plan.members.(p) in
          (match m.Plan.scratch_slot with
          | Some s when not (Box.is_empty region) && not capacity_flagged.(s)
            ->
            let need = Array.fold_left ( * ) 1 (Box.widths region) in
            if need > tg.Plan.scratch_slot_len.(s) then begin
              capacity_flagged.(s) <- true;
              issue
                "group %d: scratch slot %d holds %d elements but %s needs \
                 %d for tile %s"
                tg.Plan.gid s
                tg.Plan.scratch_slot_len.(s)
                m.Plan.func.Func.name need (Box.to_string tile)
            end
          | _ -> ());
          let compute = Box.inter region (Box.of_sizes m.Plan.sizes) in
          if not (Box.is_empty compute) then
            Array.iteri
              (fun i pid ->
                if not (Hashtbl.mem halo_flagged (m.Plan.func.Func.id, pid))
                then begin
                  let image =
                    Box.map_accesses (Func.accesses_to m.Plan.func pid)
                      compute
                  in
                  let bad box what =
                    if not (Box.contains box image) then begin
                      Hashtbl.replace halo_flagged
                        (m.Plan.func.Func.id, pid) ();
                      issue
                        "group %d: %s reads %s at %s, outside %s %s (tile \
                         %s)"
                        tg.Plan.gid m.Plan.func.Func.name
                        (Pipeline.func plan.Plan.pipeline pid).Func.name
                        (Box.to_string image) what (Box.to_string box)
                        (Box.to_string tile)
                    end
                  in
                  match m.Plan.src_of.(i) with
                  | Plan.P_member q ->
                    let _, producer_region = req.(q) in
                    bad producer_region "its computed scratch region"
                  | Plan.P_array _ | Plan.P_input _ ->
                    let psz =
                      concrete_sizes ~n:plan.Plan.n
                        (Pipeline.func plan.Plan.pipeline pid)
                    in
                    bad (Box.with_ghost psz) "its allocated halo box"
                end)
              m.Plan.compiled.Compile.producers)
        req)
    tg.Plan.tiles

let check_diamond (plan : Plan.t) (dg : Plan.diamond_group) ~add =
  let issue fmt = Printf.ksprintf add fmt in
  let interior = Box.of_sizes dg.Plan.sizes in
  let ghost = Box.with_ghost dg.Plan.sizes in
  Array.iteri
    (fun step (m : Plan.member) ->
      Array.iteri
        (fun i pid ->
          let image =
            Box.map_accesses (Func.accesses_to m.Plan.func pid) interior
          in
          if i = dg.Plan.prev_pos.(step) then begin
            if not (Box.contains ghost image) then
              issue
                "group %d step %d: %s reads the previous iterate at %s, \
                 outside the modulo-buffer halo %s"
                dg.Plan.gid step m.Plan.func.Func.name (Box.to_string image)
                (Box.to_string ghost)
          end
          else
            match m.Plan.src_of.(i) with
            | Plan.P_member _ ->
              issue "group %d step %d: unexpected scratch read in %s"
                dg.Plan.gid step m.Plan.func.Func.name
            | Plan.P_array _ | Plan.P_input _ ->
              let psz =
                concrete_sizes ~n:plan.Plan.n
                  (Pipeline.func plan.Plan.pipeline pid)
              in
              if not (Box.contains (Box.with_ghost psz) image) then
                issue
                  "group %d step %d: %s reads %s at %s, outside its halo \
                   box"
                  dg.Plan.gid step m.Plan.func.Func.name
                  (Pipeline.func plan.Plan.pipeline pid).Func.name
                  (Box.to_string image))
        m.Plan.compiled.Compile.producers)
    dg.Plan.steps

(* ---- entry points -------------------------------------------------- *)

let check (plan : Plan.t) =
  Telemetry.add c_runs 1;
  let issues = ref [] in
  let add s = issues := s :: !issues in
  let fname fid = (Pipeline.func plan.Plan.pipeline fid).Func.name in
  check_arrays plan ~fname ~add;
  Array.iter
    (fun g ->
      match g with
      | Plan.G_tiled tg ->
        check_scratch tg ~add;
        check_geometry plan tg ~add
      | Plan.G_diamond dg -> check_diamond plan dg ~add)
    plan.Plan.groups;
  match List.rev !issues with
  | [] -> Ok ()
  | l ->
    Telemetry.add c_issues (List.length l);
    Error l

let check_exn plan =
  match check plan with
  | Ok () -> ()
  | Error issues ->
    invalid_arg
      ("Plan_check: unsound plan:\n  " ^ String.concat "\n  " issues)

let build pipeline ~opts ~n ~params =
  let plan = Plan.build pipeline ~opts ~n ~params in
  if opts.Options.check_plan then check_exn plan;
  plan
