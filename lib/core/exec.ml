open Repro_ir
open Repro_poly
module Buf = Repro_grid.Buf
module Grid = Repro_grid.Grid
module Parallel = Repro_runtime.Parallel
module Mempool = Repro_runtime.Mempool
module Telemetry = Repro_runtime.Telemetry
module Watchdog = Repro_runtime.Watchdog
module Flightrec = Repro_runtime.Flightrec
module Profile = Repro_runtime.Profile

let c_tiles = Telemetry.counter "exec.tiles"
let c_points = Telemetry.counter "exec.points_computed"
let c_redundant = Telemetry.counter "exec.points_redundant"

type runtime = {
  par : Parallel.t;
  pool : Mempool.t;
}

let runtime ?(domains = 1) ?(poison = false) () =
  { par = Parallel.create domains; pool = Mempool.create ~poison () }

let free_runtime rt =
  Parallel.teardown rt.par;
  Mempool.clear rt.pool

let with_runtime ?domains ?poison f =
  let rt = runtime ?domains ?poison () in
  Fun.protect ~finally:(fun () -> free_runtime rt) (fun () -> f rt)

(* ------------------------------------------------------------------ *)
(* Fault injection (test/bench harness hook).

   When set, the injector is called right after each stage writes its
   destination, with the stage name and the destination binding, so a
   harness can corrupt intermediate buffers *between* stages — the
   guarded solver must then detect the fault at the cycle boundary.
   Called from worker domains when [domains > 1]; injectors must be
   thread-safe.  Never enabled in production paths. *)

type fault_injector = gid:int -> stage:string -> Compile.source -> unit

let injector : fault_injector option ref = ref None
let set_fault_injector f = injector := f

let inject ~gid ~stage dst =
  match !injector with Some h -> h ~gid ~stage dst | None -> ()

(* ------------------------------------------------------------------ *)
(* Per-domain scratchpad buffers, cached across tiles and cycles.       *)

type scratch_cache = (int, int * Buf.t array) Hashtbl.t
(* gid -> (plan uid, slot buffers) *)

let scratch_key : scratch_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let scratch_for ~plan_uid ~gid ~(lens : int array) =
  let tbl = Domain.DLS.get scratch_key in
  match Hashtbl.find_opt tbl gid with
  | Some (uid, bufs)
    when uid = plan_uid && Array.length bufs = Array.length lens ->
    bufs
  | Some _ | None ->
    let bufs = Array.map Buf.create_uninit lens in
    Hashtbl.replace tbl gid (plan_uid, bufs);
    bufs

(* ------------------------------------------------------------------ *)
(* Source construction helpers                                          *)

let strides_of_extents extents =
  let d = Array.length extents in
  let s = Array.make d 1 in
  for k = d - 2 downto 0 do
    s.(k) <- s.(k + 1) * extents.(k + 1)
  done;
  s

let full_source (buf : Buf.t) sizes =
  let extents = Array.map (fun n -> n + 2) sizes in
  { Compile.data = buf.Buf.data;
    strides = strides_of_extents extents;
    org = Array.make (Array.length sizes) 0 }

let region_source (buf : Buf.t) (region : Box.t) =
  { Compile.data = buf.Buf.data;
    strides = strides_of_extents (Box.widths region);
    org = Array.copy region.Box.lo }

(* Copy the values of [box] from [src] to [dst]; both must have unit stride
   in the last dimension. *)
let copy_box ~(src : Compile.source) ~(dst : Compile.source) (box : Box.t) =
  if not (Box.is_empty box) then begin
    let d = Box.rank box in
    assert (src.Compile.strides.(d - 1) = 1 && dst.Compile.strides.(d - 1) = 1);
    let row = Array.copy box.Box.lo in
    let len = box.Box.hi.(d - 1) - box.Box.lo.(d - 1) + 1 in
    let rec go k =
      if k = d - 1 then begin
        let s0 = Compile.source_index src row in
        let d0 = Compile.source_index dst row in
        let s = Bigarray.Array1.sub src.Compile.data s0 len in
        let t = Bigarray.Array1.sub dst.Compile.data d0 len in
        Bigarray.Array1.blit s t
      end
      else
        for x = box.Box.lo.(k) to box.Box.hi.(k) do
          row.(k) <- x;
          go (k + 1)
        done
    in
    go 0
  end

(* ------------------------------------------------------------------ *)

type ctx = {
  plan : Plan.t;
  rt : runtime;
  bufs : Buf.t option array;  (* by array id *)
  input_grids : Grid.t array;  (* by input index *)
  (* strides/extents of each func's full array layout, by func id *)
  func_sizes : int array array;
  (* profiler sites by func id; [||] when the profiler was disabled at
     run start (the snapshot also guards against a mid-run enable, which
     would otherwise index an empty table) *)
  psites : Profile.site array;
}

let check_grid_matches (f : Func.t) ~n (g : Grid.t) =
  let expect = Array.map (fun s -> Sizeexpr.eval ~n s + 2) f.Func.sizes in
  if Grid.extents g <> expect then
    invalid_arg
      (Printf.sprintf "Exec.run: grid extents mismatch for %s" f.Func.name)

let array_buf ctx a =
  match ctx.bufs.(a) with
  | Some b -> b
  | None -> invalid_arg "Exec.run: array used before allocation"

let source_of_binding ctx ~(member : Plan.member)
    ~(tile_srcs : Compile.source option array) i =
  match member.Plan.src_of.(i) with
  | Plan.P_input idx ->
    let g = ctx.input_grids.(idx) in
    { Compile.data = g.Grid.buf.Buf.data;
      strides = Array.copy g.Grid.strides;
      org = Array.make (Grid.dims g) 0 }
  | Plan.P_array a ->
    let pid = member.Plan.compiled.Compile.producers.(i) in
    full_source (array_buf ctx a) ctx.func_sizes.(pid)
  | Plan.P_member p -> (
    match tile_srcs.(p) with
    | Some s -> s
    | None -> invalid_arg "Exec.run: scratch read before it was computed")

(* ------------------------------------------------------------------ *)
(* Tiled group execution                                                *)

let run_tile ctx (tg : Plan.tiled_group) scratch tile =
  (* cooperative cancellation point: a tripped stage deadline aborts
     here, before the tile's kernels run, never mid-kernel *)
  Watchdog.check ();
  let req = Regions.demand tg.Plan.geom ~tile in
  let nm = Array.length tg.Plan.members in
  Telemetry.add c_tiles 1;
  (* per member: the source its in-group consumers read (its scratchpad) *)
  let tile_srcs : Compile.source option array = Array.make nm None in
  for p = 0 to nm - 1 do
    let m = tg.Plan.members.(p) in
    let id, region = req.(p) in
    assert (id = m.Plan.func.Func.id);
    if not (Box.is_empty region) then begin
      let t_stage = Telemetry.begin_span () in
      let p_stage = Profile.start () in
      let interior = Box.of_sizes m.Plan.sizes in
      let srcs =
        Array.init
          (Array.length m.Plan.src_of)
          (source_of_binding ctx ~member:m ~tile_srcs)
      in
      (match (m.Plan.scratch_slot, m.Plan.array_id) with
      | Some slot, arr ->
        let dst = region_source scratch.(slot) region in
        m.Plan.compiled.Compile.run ~srcs ~dst ~interior ~region;
        inject ~gid:tg.Plan.gid ~stage:m.Plan.func.Func.name dst;
        tile_srcs.(p) <- Some dst;
        (match arr with
         | Some a ->
           (* live-out with in-group readers: publish the own slice *)
           let own = Regions.own_slice tg.Plan.geom id ~tile in
           let adst = full_source (array_buf ctx a) m.Plan.sizes in
           copy_box ~src:dst ~dst:adst (Box.inter own region)
         | None -> ())
      | None, Some a ->
        let own = Regions.own_slice tg.Plan.geom id ~tile in
        let dst = full_source (array_buf ctx a) m.Plan.sizes in
        m.Plan.compiled.Compile.run ~srcs ~dst ~interior
          ~region:(Box.inter own region);
        inject ~gid:tg.Plan.gid ~stage:m.Plan.func.Func.name dst
      | None, None ->
        invalid_arg
          (m.Plan.func.Func.name ^ ": member with neither scratch nor array"));
      if t_stage <> 0 then
        Telemetry.end_span t_stage ~cat:"stage"
          ("stage:" ^ m.Plan.func.Func.name);
      if p_stage <> 0 && Array.length ctx.psites > 0 then
        Profile.stop p_stage ctx.psites.(m.Plan.func.Func.id)
    end
  done

let run_tiled ctx (tg : Plan.tiled_group) =
  let ntiles = Array.length tg.Plan.tiles in
  Parallel.parallel_for ctx.rt.par ~lo:0 ~hi:(ntiles - 1) (fun ti ->
      let scratch =
        scratch_for ~plan_uid:ctx.plan.Plan.uid ~gid:tg.Plan.gid
          ~lens:tg.Plan.scratch_slot_len
      in
      run_tile ctx tg scratch tg.Plan.tiles.(ti))

(* ------------------------------------------------------------------ *)
(* Diamond group execution                                              *)

let run_diamond ctx (dg : Plan.diamond_group) =
  (* one site per diamond group: fronts interleave every step, so
     per-stage attribution happens downstream (flops share, same rule
     Perf_report uses for the telemetry spans) *)
  let p_front_site =
    if Array.length ctx.psites > 0 then
      Some (Profile.site (Printf.sprintf "diamond.front.g%d" dg.Plan.gid))
    else None
  in
  let nsteps = Array.length dg.Plan.steps in
  let last = dg.Plan.steps.(nsteps - 1) in
  let out_arr =
    match last.Plan.array_id with
    | Some a -> array_buf ctx a
    | None -> invalid_arg "Exec.run: diamond chain without output array"
  in
  let len = Array.fold_left (fun acc s -> acc * (s + 2)) 1 dg.Plan.sizes in
  let tmp =
    if ctx.plan.Plan.opts.Options.pool then Mempool.acquire ctx.rt.pool len
    else Buf.create_uninit len
  in
  let boundary =
    match last.Plan.func.Func.boundary with
    | Func.Dirichlet v -> v
    | Func.Ghost_input -> 0.0
  in
  let interior = Box.of_sizes dg.Plan.sizes in
  let ghost = Box.with_ghost dg.Plan.sizes in
  let out_src = full_source out_arr dg.Plan.sizes in
  let tmp_src = full_source tmp dg.Plan.sizes in
  Compile.fill_rim out_src ~region:ghost ~interior boundary;
  Compile.fill_rim tmp_src ~region:ghost ~interior boundary;
  (* buffer holding iterate t: the final step lands in the output array *)
  let buf_of t = if (nsteps - t) mod 2 = 0 then out_src else tmp_src in
  let init_src =
    match dg.Plan.init_src with
    | None -> None  (* zero-init chain: step 0 reads no previous iterate *)
    | Some (Plan.P_input idx) ->
      let g = ctx.input_grids.(idx) in
      Some
        { Compile.data = g.Grid.buf.Buf.data;
          strides = Array.copy g.Grid.strides;
          org = Array.make (Grid.dims g) 0 }
    | Some (Plan.P_array a) ->
      let pid =
        dg.Plan.steps.(0).Plan.compiled.Compile.producers.(dg.Plan.prev_pos.(0))
      in
      Some (full_source (array_buf ctx a) ctx.func_sizes.(pid))
    | Some (Plan.P_member _) -> invalid_arg "Exec.run: bad diamond init source"
  in
  let d = Array.length dg.Plan.sizes in
  let size = dg.Plan.sizes.(0) in
  (* schedule: wavefronts of tiles plus a per-tile row iterator, for the
     chosen time-tiling scheme *)
  let fronts, iter_rows =
    match dg.Plan.scheme with
    | Plan.Sched_diamond { sigma } ->
      ( Array.map
          (Array.map (fun (t : Diamond.tile) -> `D t))
          (Diamond.wavefronts ~steps:nsteps ~size ~sigma),
        fun tile f ->
          match tile with
          | `D t -> Diamond.iter_tile ~steps:nsteps ~size ~sigma t ~f
          | `S t -> ignore t; assert false )
    | Plan.Sched_skewed { tau; sigma } ->
      ( Array.map
          (Array.map (fun (t : Skewed.tile) -> `S t))
          (Skewed.wavefronts ~steps:nsteps ~size ~tau ~sigma),
        fun tile f ->
          match tile with
          | `S t -> Skewed.iter_tile ~steps:nsteps ~size ~tau ~sigma t ~f
          | `D t -> ignore t; assert false )
  in
  let run_fronts () =
  Array.iter
    (fun front ->
      let t_front = Telemetry.begin_span () in
      let p_front = Profile.start () in
      Parallel.parallel_for ctx.rt.par ~lo:0 ~hi:(Array.length front - 1)
        (fun fi ->
          Watchdog.check ();
          iter_rows front.(fi) (fun ~t ~xlo ~xhi ->
              let step = t - 1 in
              let m = dg.Plan.steps.(step) in
              let prev =
                if t = 1 then init_src else Some (buf_of (t - 1))
              in
              let srcs =
                Array.init
                  (Array.length m.Plan.src_of)
                  (fun i ->
                    if i = dg.Plan.prev_pos.(step) then
                      match prev with
                      | Some p -> p
                      | None ->
                        invalid_arg "Exec.run: missing diamond init source"
                    else source_of_binding ctx ~member:m ~tile_srcs:[||] i)
              in
              let lo = Array.make d 1 and hi = Array.copy dg.Plan.sizes in
              lo.(0) <- xlo;
              hi.(0) <- xhi;
              let region = Box.full lo hi in
              m.Plan.compiled.Compile.run ~srcs ~dst:(buf_of t) ~interior
                ~region));
      if t_front <> 0 then
        Telemetry.end_span t_front ~cat:"stage"
          ~args:
            [ ("tiles", Telemetry.Int (Array.length front));
              ("gid", Telemetry.Int dg.Plan.gid) ]
          "diamond.front";
      match p_front_site with
      | Some ps -> Profile.stop p_front ps
      | None -> ())
    fronts;
  inject ~gid:dg.Plan.gid ~stage:last.Plan.func.Func.name out_src
  in
  let release_tmp () =
    if ctx.plan.Plan.opts.Options.pool then Mempool.release ctx.rt.pool tmp
  in
  (* a faulted or deadline-tripped front must not strand the pooled
     scratch buffer: release it best-effort before re-raising, so the
     pool stays quiescent across failed solves *)
  match run_fronts () with
  | () -> release_tmp ()
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    (try release_tmp () with _ -> ());
    Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Work accounting (the paper's redundant-computation metric)           *)

let group_points (group : Plan.group_exec) =
  match group with
  | Plan.G_tiled tg ->
    let computed =
      Array.fold_left
        (fun acc tile ->
          Array.fold_left
            (fun acc (_, b) -> acc + Box.points b)
            acc
            (Regions.demand tg.Plan.geom ~tile))
        0 tg.Plan.tiles
    in
    let domain =
      Array.fold_left
        (fun acc (m : Plan.member) ->
          acc + Box.points (Box.of_sizes m.Plan.sizes))
        0 tg.Plan.members
    in
    (computed, domain)
  | Plan.G_diamond dg ->
    let inner =
      Array.fold_left ( * ) 1
        (Array.sub dg.Plan.sizes 1 (Array.length dg.Plan.sizes - 1))
    in
    let p = Array.length dg.Plan.steps * dg.Plan.sizes.(0) * inner in
    (p, p)

(* Demand regions are recomputed per tile, so cache per-group counts by
   plan uid (only consulted from the sequential group loop, and only
   when telemetry is enabled). *)
let points_memo : (int, (int * int) array) Hashtbl.t = Hashtbl.create 8

let group_points_cached plan gi =
  let arr =
    match Hashtbl.find_opt points_memo plan.Plan.uid with
    | Some a -> a
    | None ->
      let a = Array.map group_points plan.Plan.groups in
      Hashtbl.replace points_memo plan.Plan.uid a;
      a
  in
  arr.(gi)

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)

let liveouts_of_group (g : Plan.group_exec) =
  match g with
  | Plan.G_tiled tg ->
    Array.to_list tg.Plan.members
    |> List.filter_map (fun (m : Plan.member) ->
           Option.map (fun a -> (m, a)) m.Plan.array_id)
  | Plan.G_diamond dg ->
    Array.to_list dg.Plan.steps
    |> List.filter_map (fun (m : Plan.member) ->
           Option.map (fun a -> (m, a)) m.Plan.array_id)

let run plan rt ~inputs ~outputs =
  let n = plan.Plan.n in
  let nfuncs = Array.length (Pipeline.funcs plan.Plan.pipeline) in
  let func_sizes =
    Array.init nfuncs (fun id ->
        let f = Pipeline.func plan.Plan.pipeline id in
        Array.map (fun s -> Sizeexpr.eval ~n s) f.Func.sizes)
  in
  let input_grids =
    Array.map
      (fun id ->
        match List.assoc_opt id inputs with
        | Some g ->
          check_grid_matches (Pipeline.func plan.Plan.pipeline id) ~n g;
          g
        | None -> invalid_arg "Exec.run: missing input grid")
      plan.Plan.inputs
  in
  let bufs = Array.make (Array.length plan.Plan.arrays) None in
  (* bind output arrays to caller-provided grids *)
  List.iter
    (fun (fid, a) ->
      match List.assoc_opt fid outputs with
      | Some g ->
        check_grid_matches (Pipeline.func plan.Plan.pipeline fid) ~n g;
        bufs.(a) <- Some g.Grid.buf
      | None -> invalid_arg "Exec.run: missing output grid")
    plan.Plan.output_arrays;
  (* snapshot profiler enablement once: sites are interned up front (the
     enabled path may allocate), and a mid-run toggle can never index a
     table built for the other state *)
  let pon = Profile.enabled () in
  let psites =
    if pon then
      Array.init nfuncs (fun id ->
          Profile.site
            ("stage:" ^ (Pipeline.func plan.Plan.pipeline id).Func.name))
    else [||]
  in
  let pgroups =
    if pon then
      Array.mapi
        (fun gi group ->
          Profile.site
            (Printf.sprintf "group%d:%s" gi
               (match group with
               | Plan.G_tiled _ -> "tiled"
               | Plan.G_diamond _ -> "diamond")))
        plan.Plan.groups
    else [||]
  in
  let p_run_site = if pon then Some (Profile.site "exec.run") else None in
  let ctx = { plan; rt; bufs; input_grids; func_sizes; psites } in
  let opts = plan.Plan.opts in
  (* which array slots hold pool-acquired buffers (never the caller's
     output grids) — the exception path below releases exactly these *)
  let pooled = Array.make (Array.length plan.Plan.arrays) false in
  let t_run = Telemetry.begin_span () in
  let p_run = Profile.start () in
  let run_groups () =
  Array.iteri
    (fun gi group ->
      let t_group = Telemetry.begin_span () in
      let p_group = Profile.start () in
      (* acquire arrays whose first use is this group *)
      Array.iteri
        (fun a (info : Plan.array_info) ->
          if info.Plan.first_group = gi && bufs.(a) = None then
            bufs.(a) <-
              Some
                (if opts.Options.pool then begin
                   let b = Mempool.acquire rt.pool info.Plan.len in
                   pooled.(a) <- true;
                   b
                 end
                 else Buf.create_uninit info.Plan.len))
        plan.Plan.arrays;
      (* prefill ghost rims of this group's live-out grids *)
      List.iter
        (fun ((m : Plan.member), a) ->
          let boundary =
            match m.Plan.func.Func.boundary with
            | Func.Dirichlet v -> v
            | Func.Ghost_input -> 0.0
          in
          let src = full_source (array_buf ctx a) m.Plan.sizes in
          Compile.fill_rim src
            ~region:(Box.with_ghost m.Plan.sizes)
            ~interior:(Box.of_sizes m.Plan.sizes)
            boundary)
        (liveouts_of_group group);
      let exec_group () =
        match group with
        | Plan.G_tiled tg -> run_tiled ctx tg
        | Plan.G_diamond dg -> run_diamond ctx dg
      in
      if Flightrec.on () then
        Flightrec.emit
          (Flightrec.Group_begin
             { gid = gi;
               kind =
                 (match group with
                 | Plan.G_tiled _ -> "tiled"
                 | Plan.G_diamond _ -> "diamond") });
      (match opts.Options.deadline with
       | Some s ->
         Watchdog.with_deadline
           ~stage:(Printf.sprintf "group%d" gi)
           ~budget_ns:(max 1 (int_of_float (s *. 1e9)))
           exec_group
       | None -> exec_group ());
      if Flightrec.on () then Flightrec.emit (Flightrec.Group_end { gid = gi });
      (* release arrays after their last consuming group *)
      if opts.Options.pool then
        Array.iteri
          (fun a (info : Plan.array_info) ->
            if info.Plan.last_group = gi && not info.Plan.output then begin
              match bufs.(a) with
              | Some b ->
                Mempool.release rt.pool b;
                pooled.(a) <- false;
                bufs.(a) <- None
              | None -> ()
            end)
          plan.Plan.arrays;
      if t_group <> 0 then begin
        let computed, domain = group_points_cached plan gi in
        Telemetry.add c_points computed;
        Telemetry.add c_redundant (computed - domain);
        let name, shape_args =
          match group with
          | Plan.G_tiled tg ->
            ( Printf.sprintf "group%d:tiled" gi,
              [ ("tiles", Telemetry.Int (Array.length tg.Plan.tiles));
                ("members", Telemetry.Int (Array.length tg.Plan.members)) ] )
          | Plan.G_diamond dg ->
            ( Printf.sprintf "group%d:diamond" gi,
              [ ("steps", Telemetry.Int (Array.length dg.Plan.steps)) ] )
        in
        Telemetry.end_span t_group ~cat:"exec"
          ~args:
            (("gid", Telemetry.Int gi)
             :: ("points", Telemetry.Int computed)
             :: ("redundant_points", Telemetry.Int (computed - domain))
             :: shape_args)
          name
      end;
      if p_group <> 0 && pon then Profile.stop p_group pgroups.(gi))
    plan.Plan.groups
  in
  (* exception safety: a crashed, faulted, or deadline-stopped group must
     not strand its pool-acquired intermediates — a long-running server
     tears the runtime down per request and checks quiescence.  Output
     slots hold caller grids and are never released here. *)
  (try run_groups ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Array.iteri
       (fun a is_pooled ->
         if is_pooled then begin
           (match bufs.(a) with
            | Some b -> ( try Mempool.release rt.pool b with _ -> ())
            | None -> ());
           pooled.(a) <- false;
           bufs.(a) <- None
         end)
       pooled;
     Printexc.raise_with_backtrace e bt);
  if t_run <> 0 then
    Telemetry.end_span t_run ~cat:"exec"
      ~args:[ ("groups", Telemetry.Int (Array.length plan.Plan.groups)) ]
      "exec.run";
  match p_run_site with
  | Some ps -> Profile.stop p_run ps
  | None -> ()

let points_computed plan =
  Array.fold_left
    (fun acc g -> acc + fst (group_points g))
    0 plan.Plan.groups

let points_domain plan =
  Array.fold_left
    (fun acc g -> acc + snd (group_points g))
    0 plan.Plan.groups
