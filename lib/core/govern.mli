(** Resource governance: the memory-budgeted planning ladder.

    The paper's variants form a storage-aggressiveness hierarchy —
    polymg-dtile-opt+ adds diamond modulo buffers on top of polymg-opt+,
    which pools and remaps full arrays over polymg-opt's fused scratch
    plans, which in turn shrink polymg-naive's one-full-array-per-stage
    storage.  Governance turns that hierarchy into a {e degradation
    ladder}: given a byte budget for the runtime working footprint,
    {!decide} builds the plan for each rung (requested variant first,
    then successive {!demote} steps down to naive), models each rung's
    peak footprint with {!peak_bytes}, and picks the {e most aggressive
    rung that fits}.  Every skipped rung is recorded as a {!demotion}
    carrying the modelled cost delta (extra DRAM traffic and FLOPs paid
    for the smaller footprint), so a degraded solve is never silent.

    A counter-intuitive consequence, worth stating once: the naive
    variant has the {e largest} modelled footprint (every stage keeps a
    dedicated full array, nothing is pooled), and opt+ typically the
    smallest.  The ladder is ordered by {e performance}
    aggressiveness, not footprint, so the feasibility floor — the
    smallest footprint over all rungs — is usually realized by opt+,
    not naive.  A budget below that floor is infeasible ({!decide}
    returns [Error]); callers map it to a dedicated exit code rather
    than aborting mid-solve.

    All plans are built through {!Plan_check.build}, so a rung only
    enters the ladder after passing the storage-safety validator when
    [check_plan] is set. *)

type rung = {
  rname : string;  (** preset name of this rung's options ({!Options.name}) *)
  ropts : Options.t;
      (** the rung's options: the requested options with progressively
          fewer storage optimizations; non-preset knobs (tiles,
          thresholds, [check_plan], [mem_budget], [deadline]) are
          inherited unchanged down the ladder *)
  plan : Plan.t;
  pool_peak_bytes : int;
      (** modelled peak of pooled/heap full-array + diamond-buffer bytes
          (the part {!Repro_runtime.Mempool} budget enforcement sees) *)
  scratch_bytes : int;  (** [domains ×] per-thread scratchpad footprint *)
  peak_bytes : int;  (** [pool_peak_bytes + scratch_bytes] *)
  dram_traffic : int;  (** modelled DRAM bytes per execution ({!Cost}) *)
  flops : float;  (** modelled FLOPs per execution, incl. redundancy *)
  fits : bool;  (** [peak_bytes <= budget] (always true with no budget) *)
}

type demotion = {
  from_rung : string;
  to_rung : string;
  over_bytes : int;  (** how far [from_rung] overshot the budget *)
  traffic_delta : int;
      (** extra modelled DRAM bytes per execution paid by [to_rung] *)
  flops_delta : float;  (** extra modelled FLOPs per execution *)
}

type report = {
  budget : int option;
  domains : int;  (** domain count the scratch term was modelled with *)
  requested : string;  (** name of the variant originally asked for *)
  ladder : rung array;  (** requested variant first, naive last *)
  chosen : int;  (** index into [ladder] of the selected rung *)
  demotions : demotion list;  (** one per rung skipped; [] when none *)
}

type infeasible = {
  inf_budget : int;
  floor_bytes : int;  (** smallest modelled footprint over the ladder *)
  floor_rung : string;  (** rung realizing the floor (usually opt+) *)
  inf_ladder : rung array;  (** the full ladder, for reporting *)
}

val demote : Options.t -> Options.t option
(** One {e feature} rung down: time-tiled smoothing falls back to
    overlapped tiles (dtile-opt+ → opt+), then
    pooling/array-reuse/scratch-reuse switch off together (opt+ → opt),
    then fusion (opt → naive).  [None] at the bottom. *)

val ladder_of : Options.t -> (string * Options.t) list
(** The full ladder: the requested options, then tile-shrink rungs
    (overlapped tile sizes halved per step down to a floor of 8 —
    named ["opt+~tiles/2"], ["opt+~tiles/4"], … — trading redundant
    compute for a smaller scratch working set), then every {!demote}
    feature step.  Tile shrinking precedes feature removal because it
    is the cheapest degradation: same math, same storage mapping,
    strictly smaller footprint. *)

val pool_peak_bytes : Plan.t -> int
(** Modelled peak of full-array plus diamond-modulo-buffer bytes during
    one plan execution.  Pooled plans account windowed liveness (an
    array occupies memory only between its acquire and release groups);
    unpooled plans keep every non-output array live for the whole
    execution.  Pipeline outputs live in caller-owned grids and are
    excluded. *)

val peak_bytes : ?domains:int -> Plan.t -> int
(** [pool_peak_bytes] plus [domains] per-thread scratchpad footprints
    ([domains] defaults to 1). *)

val decide :
  ?domains:int ->
  Repro_ir.Pipeline.t ->
  opts:Options.t ->
  n:int ->
  params:(string -> float) ->
  (report, infeasible) result
(** Builds and costs the ladder, then selects the first (most
    aggressive) rung whose modelled footprint fits [opts.mem_budget].
    With no budget the requested rung is chosen and the ladder still
    reports every rung's footprint.  Demotions increment the
    [govern.demotions] telemetry counter; an infeasible budget
    increments [govern.infeasible]. *)

val chosen : report -> rung

val bytes_of_string : string -> int option
(** Parses a human byte size: a plain integer, or with a [K]/[M]/[G]
    suffix (binary multiples, case-insensitive).  [None] on junk or a
    non-positive size. *)

val pp_bytes : Format.formatter -> int -> unit
(** ["25.1 MiB"]-style rendering. *)

val pp_report : Format.formatter -> report -> unit
(** The [polymg_dump --what budget] table: one line per rung with
    footprint breakdown and modelled cost, the chosen rung marked, and
    every demotion with its cost delta. *)

val pp_infeasible : Format.formatter -> infeasible -> unit

val report_json : report -> Repro_runtime.Json.t
(** Machine-readable form of the report for the pressure campaign. *)
