module Telemetry = Repro_runtime.Telemetry
module Json = Repro_runtime.Json
module Flightrec = Repro_runtime.Flightrec

let c_demotions = Telemetry.counter "govern.demotions"
let c_infeasible = Telemetry.counter "govern.infeasible"

type rung = {
  rname : string;
  ropts : Options.t;
  plan : Plan.t;
  pool_peak_bytes : int;
  scratch_bytes : int;
  peak_bytes : int;
  dram_traffic : int;
  flops : float;
  fits : bool;
}

type demotion = {
  from_rung : string;
  to_rung : string;
  over_bytes : int;
  traffic_delta : int;
  flops_delta : float;
}

type report = {
  budget : int option;
  domains : int;
  requested : string;
  ladder : rung array;
  chosen : int;
  demotions : demotion list;
}

type infeasible = {
  inf_budget : int;
  floor_bytes : int;
  floor_rung : string;
  inf_ladder : rung array;
}

(* ------------------------------------------------------------------ *)
(* The ladder                                                           *)

(* Each feature step removes one layer of storage optimization while
   keeping every non-preset knob (thresholds, check_plan, budget,
   deadline) so the demoted plan still runs under the same governance
   regime.  The chain mirrors the paper's variant stack in reverse. *)
let demote (o : Options.t) =
  match o.Options.smoother with
  | Options.Diamond_smoother _ | Options.Skewed_smoother _ ->
    Some { o with Options.smoother = Options.Overlapped_smoother }
  | Options.Overlapped_smoother ->
    if o.Options.pool || o.Options.array_reuse || o.Options.scratch_reuse then
      Some
        { o with
          Options.pool = false;
          array_reuse = false;
          scratch_reuse = false }
    else if o.Options.fuse then
      Some { o with Options.fuse = false; group_size_limit = 1 }
    else None

let min_tile = 8

let shrink_tiles = Array.map (fun t -> max min_tile (t / 2))

(* The ladder interleaves two degradation axes.  Tile shrinking comes
   first: halving the overlapped tile sizes shrinks the per-thread
   scratch working set at a pure redundant-compute cost — the cheapest
   trade, since it keeps the variant's math and storage mapping.  Only
   when the tiles bottom out does the feature chain remove optimization
   layers; those rungs usually have *larger* footprints (the paper's
   storage optimizations shrink memory and time together), so under a
   tight budget they are reported but rarely chosen — they exist for
   runtime demotion, where the model proved optimistic and any
   different storage layout is worth attempting. *)
let ladder_of opts =
  let rec walk (o : Options.t) shrink acc =
    let base = Options.name o in
    let rname =
      if shrink = 0 || not o.Options.fuse then base
      else Printf.sprintf "%s~tiles/%d" base (1 lsl shrink)
    in
    let acc = (rname, o) :: acc in
    let t2 = shrink_tiles o.Options.tile_2d in
    let t3 = shrink_tiles o.Options.tile_3d in
    if
      o.Options.fuse && (t2 <> o.Options.tile_2d || t3 <> o.Options.tile_3d)
    then walk { o with Options.tile_2d = t2; tile_3d = t3 } (shrink + 1) acc
    else
      match demote o with
      | Some o' -> walk o' shrink acc
      | None -> List.rev acc
  in
  walk opts 0 []

(* ------------------------------------------------------------------ *)
(* Footprint model                                                      *)

let word = 8

(* Bytes of the modulo buffer a diamond/skewed group allocates (Exec
   sizes it as the ghosted box of the chain). *)
let diamond_tmp_bytes (dg : Plan.diamond_group) =
  word * Array.fold_left (fun acc s -> acc * (s + 2)) 1 dg.Plan.sizes

let pool_peak_bytes (plan : Plan.t) =
  let arrays = plan.Plan.arrays in
  let abytes (a : Plan.array_info) = word * a.Plan.len in
  let tmp_at gi =
    match plan.Plan.groups.(gi) with
    | Plan.G_diamond dg -> diamond_tmp_bytes dg
    | Plan.G_tiled _ -> 0
  in
  let ngroups = Array.length plan.Plan.groups in
  if plan.Plan.opts.Options.pool then begin
    (* Windowed liveness: array [a] occupies pool memory from its
       acquire group through its release group; the modulo buffer is
       acquired and released within its own group. *)
    let peak = ref 0 in
    for gi = 0 to ngroups - 1 do
      let live = ref (tmp_at gi) in
      Array.iter
        (fun (a : Plan.array_info) ->
          if
            (not a.Plan.output)
            && a.Plan.first_group <= gi
            && gi <= a.Plan.last_group
          then live := !live + abytes a)
        arrays;
      if !live > !peak then peak := !live
    done;
    !peak
  end
  else begin
    (* No pool: every non-output array is heap-allocated up front and
       never reclaimed during the execution; the worst diamond buffer
       coexists with all of them. *)
    let fixed =
      Array.fold_left
        (fun acc (a : Plan.array_info) ->
          if a.Plan.output then acc else acc + abytes a)
        0 arrays
    in
    let worst_tmp = ref 0 in
    for gi = 0 to ngroups - 1 do
      if tmp_at gi > !worst_tmp then worst_tmp := tmp_at gi
    done;
    fixed + !worst_tmp
  end

let peak_bytes ?(domains = 1) plan =
  pool_peak_bytes plan + (domains * Plan.scratch_bytes_per_thread plan)

(* ------------------------------------------------------------------ *)
(* Decision                                                             *)

let build_rung ~domains ~budget pipeline ~n ~params (rname, ropts) =
  let plan = Plan_check.build pipeline ~opts:ropts ~n ~params in
  let pool_peak = pool_peak_bytes plan in
  let scratch = domains * Plan.scratch_bytes_per_thread plan in
  let peak = pool_peak + scratch in
  let cost = Cost.of_plan plan in
  { rname;
    ropts;
    plan;
    pool_peak_bytes = pool_peak;
    scratch_bytes = scratch;
    peak_bytes = peak;
    dram_traffic = Cost.total_bytes cost;
    flops = cost.Cost.flops;
    fits = (match budget with None -> true | Some b -> peak <= b) }

let chosen r = r.ladder.(r.chosen)

let decide ?(domains = 1) pipeline ~(opts : Options.t) ~n ~params =
  let budget = opts.Options.mem_budget in
  let ladder =
    ladder_of opts
    |> List.map (build_rung ~domains ~budget pipeline ~n ~params)
    |> Array.of_list
  in
  let requested = ladder.(0).rname in
  let first_fit =
    let rec find i =
      if i >= Array.length ladder then None
      else if ladder.(i).fits then Some i
      else find (i + 1)
    in
    find 0
  in
  match first_fit with
  | Some chosen ->
    let b = match budget with Some b -> b | None -> max_int in
    let demotions =
      List.init chosen (fun j ->
          let from = ladder.(j) and into = ladder.(j + 1) in
          { from_rung = from.rname;
            to_rung = into.rname;
            over_bytes = from.peak_bytes - b;
            traffic_delta = into.dram_traffic - from.dram_traffic;
            flops_delta = into.flops -. from.flops })
    in
    Telemetry.add c_demotions (List.length demotions);
    if Flightrec.on () then begin
      List.iter
        (fun d ->
          Flightrec.emit
            (Flightrec.Demotion
               { from_rung = d.from_rung;
                 to_rung = d.to_rung;
                 over_bytes = d.over_bytes }))
        demotions;
      if demotions <> [] then begin
        Flightrec.note_plan
          ~digest:(Plan.digest ladder.(chosen).plan)
          ~variant:ladder.(chosen).rname;
        ignore
          (Flightrec.incident ~kind:"demotion"
             ~detail:
               [ ( "budget_bytes",
                   match budget with
                   | Some b -> Json.num b
                   | None -> Json.Null );
                 ("requested", Json.Str requested);
                 ("chosen", Json.Str ladder.(chosen).rname);
                 ( "demotions",
                   Json.Arr
                     (List.map
                        (fun d ->
                          Json.Obj
                            [ ("from", Json.Str d.from_rung);
                              ("to", Json.Str d.to_rung);
                              ("over_bytes", Json.num d.over_bytes) ])
                        demotions) ) ]
             ())
      end
    end;
    Ok { budget; domains; requested; ladder; chosen; demotions }
  | None ->
    let floor =
      Array.fold_left
        (fun best r ->
          match best with
          | Some b when b.peak_bytes <= r.peak_bytes -> best
          | _ -> Some r)
        None ladder
    in
    let floor = Option.get floor in
    Telemetry.add c_infeasible 1;
    if Flightrec.on () then begin
      Flightrec.emit
        (Flightrec.Infeasible
           { budget_bytes = Option.get budget;
             floor_bytes = floor.peak_bytes;
             floor_rung = floor.rname });
      Flightrec.note_plan
        ~digest:(Plan.digest floor.plan)
        ~variant:floor.rname;
      ignore
        (Flightrec.incident ~kind:"budget-infeasible"
           ~detail:
             [ ("budget_bytes", Json.num (Option.get budget));
               ("floor_bytes", Json.num floor.peak_bytes);
               ("floor_rung", Json.Str floor.rname);
               ( "ladder",
                 Json.Arr
                   (Array.to_list
                      (Array.map (fun r -> Json.Str r.rname) ladder)) ) ]
           ())
    end;
    Error
      { inf_budget = Option.get budget;
        floor_bytes = floor.peak_bytes;
        floor_rung = floor.rname;
        inf_ladder = ladder }

(* ------------------------------------------------------------------ *)
(* Parsing and printing                                                 *)

let bytes_of_string s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then None
  else
    let mult, digits =
      match s.[len - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (len - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (len - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (len - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some v when v > 0 -> Some (v * mult)
    | Some _ | None -> None

let pp_bytes ppf b =
  let fb = float_of_int b in
  if b >= 1 lsl 30 then Format.fprintf ppf "%.1f GiB" (fb /. 1073741824.)
  else if b >= 1 lsl 20 then Format.fprintf ppf "%.1f MiB" (fb /. 1048576.)
  else if b >= 1 lsl 10 then Format.fprintf ppf "%.1f KiB" (fb /. 1024.)
  else Format.fprintf ppf "%d B" b

let pp_flops ppf f =
  if f >= 1e9 then Format.fprintf ppf "%.2f GFLOP" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%.2f MFLOP" (f /. 1e6)
  else Format.fprintf ppf "%.0f FLOP" f

let pp_report ppf r =
  (match r.budget with
   | Some b ->
     Format.fprintf ppf "budget %a (%d B), requested %s, chosen %s@,"
       pp_bytes b b r.requested (chosen r).rname
   | None ->
     Format.fprintf ppf "no budget, requested %s (ladder modelled only)@,"
       r.requested);
  Array.iteri
    (fun i rg ->
      Format.fprintf ppf "  %c %-10s footprint %a (arrays %a + scratch %a \
                          x%d)  traffic %a  %a%s@,"
        (if i = r.chosen then '*' else ' ')
        rg.rname pp_bytes rg.peak_bytes pp_bytes rg.pool_peak_bytes pp_bytes
        (if r.domains = 0 then 0 else rg.scratch_bytes / r.domains)
        r.domains pp_bytes rg.dram_traffic pp_flops rg.flops
        (if rg.fits then "" else "  OVER BUDGET"))
    r.ladder;
  List.iter
    (fun d ->
      Format.fprintf ppf
        "  demoted %s -> %s: %a over budget; traffic %+d B, flops %+.0f@,"
        d.from_rung d.to_rung pp_bytes d.over_bytes d.traffic_delta
        d.flops_delta)
    r.demotions

let pp_infeasible ppf i =
  Format.fprintf ppf
    "budget %a infeasible: floor is %a (rung %s); no ladder rung fits"
    pp_bytes i.inf_budget pp_bytes i.floor_bytes i.floor_rung

let rung_json rg =
  Json.Obj
    [ ("name", Json.Str rg.rname);
      ("peak_bytes", Json.num rg.peak_bytes);
      ("pool_peak_bytes", Json.num rg.pool_peak_bytes);
      ("scratch_bytes", Json.num rg.scratch_bytes);
      ("dram_traffic", Json.num rg.dram_traffic);
      ("flops", Json.Num rg.flops);
      ("fits", Json.Bool rg.fits) ]

let report_json r =
  Json.Obj
    [ ("budget",
       match r.budget with None -> Json.Null | Some b -> Json.num b);
      ("domains", Json.num r.domains);
      ("requested", Json.Str r.requested);
      ("chosen", Json.Str (chosen r).rname);
      ("ladder", Json.Arr (Array.to_list (Array.map rung_json r.ladder)));
      ("demotions",
       Json.Arr
         (List.map
            (fun d ->
              Json.Obj
                [ ("from", Json.Str d.from_rung);
                  ("to", Json.Str d.to_rung);
                  ("over_bytes", Json.num d.over_bytes);
                  ("traffic_delta", Json.num d.traffic_delta);
                  ("flops_delta", Json.Num d.flops_delta) ])
            r.demotions)) ]
