open Repro_ir
open Repro_poly

let pf = Format.fprintf

let loop_vars = [| "i"; "j"; "k"; "l" |]

let c_ident s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let fstr v = Printf.sprintf "%.17g" v

(* C rendering of a scaled-affine access applied to loop variable [v].
   Divisions go through the FDIV macro (floor division), matching the
   engine's [Box.fdiv] for negative numerators. *)
let access_str (a : Expr.access) v =
  let numer =
    if a.Expr.mul = 1 && a.Expr.add = 0 then v
    else if a.Expr.add = 0 then Printf.sprintf "%d*%s" a.Expr.mul v
    else if a.Expr.mul = 1 then Printf.sprintf "(%s%+d)" v a.Expr.add
    else Printf.sprintf "(%d*%s%+d)" a.Expr.mul v a.Expr.add
  in
  let scaled =
    if a.Expr.den = 1 then numer
    else Printf.sprintf "FDIV(%s, %d)" numer a.Expr.den
  in
  if a.Expr.off = 0 then scaled else Printf.sprintf "(%s%+d)" scaled a.Expr.off

(* Storage binding of a stage's array/scratchpad: the value at grid
   coordinate [x] lives at [name[Σ (x_k − org_k)·strides_k]].  Strides and
   origins are C expressions: integer literals for full arrays, runtime
   bound variables for per-tile scratchpads. *)
type cstore = {
  cname : string;
  cstrides : string array;
  corg : string array;
}

let index_str store accs =
  let d = Array.length accs in
  let parts =
    List.init d (fun k ->
        let idx = access_str accs.(k) loop_vars.(k) in
        let idx =
          if store.corg.(k) = "0" then idx
          else Printf.sprintf "(%s - %s)" idx store.corg.(k)
        in
        if store.cstrides.(k) = "1" then idx
        else Printf.sprintf "%s*%s" idx store.cstrides.(k))
  in
  String.concat " + " parts

let self_accs dims =
  Array.init dims (fun _ -> { Expr.mul = 1; add = 0; den = 1; off = 0 })

let self_index_str store dims = index_str store (self_accs dims)

let term_str (t : Compile.term) stores =
  let s = stores.(t.Compile.pos) in
  Printf.sprintf "%.17g * %s[%s]" t.Compile.coef s.cname
    (index_str s t.Compile.accs)

let int_strs = Array.map string_of_int

(* Row-major strides for a grid with one ghost layer per side. *)
let strides_of_sizes sizes =
  let d = Array.length sizes in
  let s = Array.make d 1 in
  for k = d - 2 downto 0 do
    s.(k) <- s.(k + 1) * (sizes.(k + 1) + 2)
  done;
  s

let zeros d = Array.make d "0"

let full_store name sizes =
  { cname = name;
    cstrides = int_strs (strides_of_sizes sizes);
    corg = zeros (Array.length sizes) }

(* ------------------------------------------------------------------ *)
(* Loop-nest emitters                                                   *)

(* The compute cases of [member] over the inclusive bounds [lb..ub]
   (C expressions, typically hoisted variables), writing through [dst]
   and reading producers through [stores] — the engine's
   [Compile.run] cases over region ∩ interior. *)
let emit_cases fmt ~(member : Plan.member) ~(stores : cstore array)
    ~(dst : cstore) ~(lb : string array) ~(ub : string array) ~indent =
  let dims = member.Plan.func.Func.dims in
  let pad = String.make indent ' ' in
  List.iter
    (fun (case : Compile.case_t) ->
      (match case.Compile.parity with
      | None -> ()
      | Some p ->
        pf fmt "%s/* parity case (%s) */@," pad
          (String.concat "," (Array.to_list (Array.map string_of_int p))));
      let stride = match case.Compile.parity with None -> 1 | Some _ -> 2 in
      for k = 0 to dims - 1 do
        let from =
          match case.Compile.parity with
          | None -> lb.(k)
          | Some p ->
            Printf.sprintf "%s + ((%d - %s) %% 2 + 2) %% 2" lb.(k) p.(k)
              lb.(k)
        in
        if k = dims - 1 then pf fmt "%s#pragma ivdep@," pad;
        pf fmt "%s%sfor (int %s = %s; %s <= %s; %s += %d)@," pad
          (String.make (2 * k) ' ')
          loop_vars.(k) from loop_vars.(k) ub.(k) loop_vars.(k) stride
      done;
      let body =
        match case.Compile.kernel with
        | Compile.Lin { base; terms } ->
          let parts =
            (if base <> 0.0 then [ fstr base ] else [])
            @ Array.to_list (Array.map (fun t -> term_str t stores) terms)
          in
          if parts = [] then "0.0" else String.concat " + " parts
        | Compile.Gen _ -> "eval_point() /* non-affine definition */"
      in
      pf fmt "%s%s%s[%s] = %s;@," pad
        (String.make (2 * dims) ' ')
        dst.cname (self_index_str dst dims) body)
    member.Plan.compiled.Compile.cases

(* Boundary value on [lb..ub] ∖ interior [1..msz] — the engine's
   [Compile.fill_rim] over a demand region's ghost part. *)
let emit_rim fmt ~dims ~(dst : cstore) ~(lb : string array)
    ~(ub : string array) ~(msz : int array) ~bnd ~indent =
  let pad = String.make indent ' ' in
  for k = 0 to dims - 1 do
    pf fmt "%s%sfor (int %s = %s; %s <= %s; %s++)@," pad
      (String.make (2 * k) ' ')
      loop_vars.(k) lb.(k) loop_vars.(k) ub.(k) loop_vars.(k)
  done;
  let cond =
    String.concat " || "
      (List.init dims (fun k ->
           Printf.sprintf "%s < 1 || %s > %d" loop_vars.(k) loop_vars.(k)
             msz.(k)))
  in
  pf fmt "%s%sif (%s) %s[%s] = %s;@," pad
    (String.make (2 * dims) ' ')
    cond dst.cname (self_index_str dst dims) (fstr bnd)

let emit_copy fmt ~dims ~(src : cstore) ~(dst : cstore) ~(lb : string array)
    ~(ub : string array) ~indent =
  let pad = String.make indent ' ' in
  for k = 0 to dims - 1 do
    pf fmt "%s%sfor (int %s = %s; %s <= %s; %s++)@," pad
      (String.make (2 * k) ' ')
      loop_vars.(k) lb.(k) loop_vars.(k) ub.(k) loop_vars.(k)
  done;
  pf fmt "%s%s%s[%s] = %s[%s];@," pad
    (String.make (2 * dims) ' ')
    dst.cname (self_index_str dst dims) src.cname (self_index_str src dims)

(* ------------------------------------------------------------------ *)
(* Per-tile bound planning for overlapped-tile groups.

   The engine recomputes [Regions.demand] per tile; the C rendering needs
   static bounds.  For each member we try the affine min/max-clamped form
   of Fig. 8 (offsets from the scaled tile origin, calibrated on a middle
   tile) and validate it against the exact demand/own-slice boxes of
   EVERY tile; truncated border tiles, non-divisible coarsening scales
   and the refinement top-boundary special case flunk validation, in
   which case the whole group falls back to exact per-tile bound tables
   (the generality/size trade-off is reported in the group comment). *)

let boxes_of_tiles (tg : Plan.tiled_group) =
  let geom = tg.Plan.geom in
  let nm = Array.length tg.Plan.members in
  let regions =
    Array.map
      (fun tile -> Array.map snd (Regions.demand geom ~tile))
      tg.Plan.tiles
  in
  let owns =
    Array.mapi
      (fun ti tile ->
        Array.init nm (fun p ->
            let m = tg.Plan.members.(p) in
            if m.Plan.array_id = None then Box.empty (Box.rank tile)
            else
              Box.inter
                (Regions.own_slice geom m.Plan.func.Func.id ~tile)
                regions.(ti).(p)))
      tg.Plan.tiles
  in
  (regions, owns)

let tile_coords ~counts flat =
  let d = Array.length counts in
  let idx = Array.make d 0 in
  let rem = ref flat in
  for k = d - 1 downto 0 do
    idx.(k) <- !rem mod counts.(k);
    rem := !rem / counts.(k)
  done;
  idx

(* Scaled tile extent of member [p] along dim [k]. *)
let scale_of (tg : Plan.tiled_group) (m : Plan.member) k =
  let rel = (Regions.rel_of tg.Plan.geom m.Plan.func.Func.id).(k) in
  if rel >= 0 then tg.Plan.tile_sizes.(k) * (1 lsl rel)
  else Int.max 1 (tg.Plan.tile_sizes.(k) / (1 lsl (-rel)))

(* Try the affine form: lo = max(cl, s·T + lo_off), hi = min(ch, s·T + s −
   1 + hi_off), calibrated on the middle tile.  Returns per-(member, dim)
   offsets, or None if any tile's exact box disagrees. *)
let try_affine (tg : Plan.tiled_group) ~counts ~(boxes : Box.t array array)
    ~(want : int -> bool) ~(clamp : Plan.member -> int -> int * int) =
  let nm = Array.length tg.Plan.members in
  let ntiles = Array.length tg.Plan.tiles in
  let dims = Array.length counts in
  let midc = tile_coords ~counts (ntiles / 2) in
  let offs = Array.make_matrix nm dims None in
  (* calibrate on the middle tile *)
  Array.iteri
    (fun p (m : Plan.member) ->
      if want p then
        let b = boxes.(ntiles / 2).(p) in
        for k = 0 to dims - 1 do
          if not (Box.is_empty b) then begin
            let s = scale_of tg m k in
            offs.(p).(k) <-
              Some
                ( s,
                  b.Box.lo.(k) - (s * midc.(k)),
                  b.Box.hi.(k) - ((s * midc.(k)) + s - 1) )
          end
        done)
    tg.Plan.members;
  (* validate every tile against the prediction *)
  let ok = ref true in
  for ti = 0 to ntiles - 1 do
    let tc = tile_coords ~counts ti in
    Array.iteri
      (fun p (m : Plan.member) ->
        if want p && !ok then
          let b = boxes.(ti).(p) in
          let pred_empty = ref false in
          let plo = Array.make dims 0 and phi = Array.make dims 0 in
          for k = 0 to dims - 1 do
            match offs.(p).(k) with
            | None -> pred_empty := true
            | Some (s, lo_off, hi_off) ->
              let cl, ch = clamp m k in
              plo.(k) <- Int.max cl ((s * tc.(k)) + lo_off);
              phi.(k) <- Int.min ch ((s * tc.(k)) + s - 1 + hi_off);
              if phi.(k) < plo.(k) then pred_empty := true
          done;
          if Box.is_empty b then ok := !ok && !pred_empty
          else
            ok :=
              !ok && (not !pred_empty) && plo = b.Box.lo && phi = b.Box.hi)
      tg.Plan.members
  done;
  if !ok then Some offs else None

(* ------------------------------------------------------------------ *)
(* Tiled group emission                                                 *)

let emit_tiled fmt ~(input_store : int -> cstore)
    ~(array_store : int -> of_func:int -> cstore) (tg : Plan.tiled_group) =
  let geom = tg.Plan.geom in
  let refm = Regions.reference geom in
  let dims = Array.length refm.Regions.sizes in
  let counts =
    Array.init dims (fun k ->
        (refm.Regions.sizes.(k) + tg.Plan.tile_sizes.(k) - 1)
        / tg.Plan.tile_sizes.(k))
  in
  let ntiles = Array.length tg.Plan.tiles in
  assert (Array.fold_left ( * ) 1 counts = ntiles);
  let regions, owns = boxes_of_tiles tg in
  let nm = Array.length tg.Plan.members in
  let members = tg.Plan.members in
  (* which boxes the emission actually indexes with: demand regions for
     scratch members, own slices for live-outs *)
  let wants_region p = members.(p).Plan.scratch_slot <> None in
  let wants_own p = members.(p).Plan.array_id <> None in
  let affine_r =
    try_affine tg ~counts ~boxes:regions ~want:wants_region
      ~clamp:(fun m k -> (0, m.Plan.sizes.(k) + 1))
  in
  let affine_o =
    try_affine tg ~counts ~boxes:owns ~want:wants_own
      ~clamp:(fun m k -> (1, m.Plan.sizes.(k)))
  in
  let affine_ok = affine_r <> None && affine_o <> None in
  pf fmt "@,  /* ---- group %d: overlapped tiles %s over %s (%s bounds) ---- */@,"
    tg.Plan.gid
    (String.concat "x"
       (Array.to_list (Array.map string_of_int tg.Plan.tile_sizes)))
    refm.Regions.func.Func.name
    (if affine_ok then "affine" else "tabled");
  (* exact per-tile bound tables when the affine form does not validate *)
  if not affine_ok then begin
    let emit_table tag boxes want =
      for p = 0 to nm - 1 do
        if want p then begin
          pf fmt "  static const int _%s_%d_%d[%d][%d] = {@," tag tg.Plan.gid
            p ntiles (2 * dims);
          for ti = 0 to ntiles - 1 do
            let b = boxes.(ti).(p) in
            let cells =
              List.init (2 * dims) (fun j ->
                  let k = j / 2 in
                  if j mod 2 = 0 then string_of_int b.Box.lo.(k)
                  else string_of_int b.Box.hi.(k))
            in
            pf fmt "    {%s}%s@," (String.concat ", " cells)
              (if ti = ntiles - 1 then "" else ",")
          done;
          pf fmt "  };@,"
        end
      done
    in
    emit_table "rb" regions wants_region;
    emit_table "ob" owns wants_own
  end;
  (* ghost-rim prefill of this group's live-out arrays (engine: the
     per-group fill_rim over with_ghost ∖ interior before the tiles) *)
  Array.iter
    (fun (m : Plan.member) ->
      match m.Plan.array_id with
      | None -> ()
      | Some a ->
        let st = array_store a ~of_func:m.Plan.func.Func.id in
        pf fmt "  /* ghost rim of live-out %s */@," m.Plan.func.Func.name;
        emit_rim fmt ~dims ~dst:st ~lb:(zeros dims)
          ~ub:(Array.map (fun s -> string_of_int (s + 1)) m.Plan.sizes)
          ~msz:m.Plan.sizes ~bnd:m.Plan.compiled.Compile.boundary ~indent:2)
    members;
  pf fmt "  #pragma omp parallel for schedule(static) collapse(%d)@," dims;
  for k = 0 to dims - 1 do
    pf fmt "  %sfor (int T_%d = 0; T_%d < %d; T_%d++) {@,"
      (String.make (2 * k) ' ')
      k k counts.(k) k
  done;
  let indent = 2 + (2 * dims) in
  let pad = String.make indent ' ' in
  (* scratchpads with user lists *)
  let slot_users = Array.make (Array.length tg.Plan.scratch_slot_len) [] in
  Array.iter
    (fun (m : Plan.member) ->
      match m.Plan.scratch_slot with
      | Some s -> slot_users.(s) <- m.Plan.func.Func.name :: slot_users.(s)
      | None -> ())
    members;
  Array.iteri
    (fun s len ->
      pf fmt "%s/* users: [%s] */@," pad
        (String.concat "; " (List.rev slot_users.(s)));
      pf fmt "%sdouble _buf_%d_%d[%d];@," pad tg.Plan.gid s len)
    tg.Plan.scratch_slot_len;
  if not affine_ok then begin
    (* row-major tile index, matching Regions.tiles order *)
    let tix =
      let rec go k acc =
        if k = dims then acc
        else
          go (k + 1)
            (if acc = "" then Printf.sprintf "T_%d" k
             else Printf.sprintf "(%s)*%d + T_%d" acc counts.(k) k)
      in
      go 0 ""
    in
    pf fmt "%sconst int _tix = %s;@," pad tix
  end;
  (* bound expressions per member *)
  let bound_exprs affine boxes_tag p (m : Plan.member) clamp =
    match affine with
    | Some offs ->
      Array.init dims (fun k ->
          match offs.(p).(k) with
          | None -> ("0", "-1")
          | Some (s, lo_off, hi_off) ->
            let cl, ch = clamp m k in
            ( Printf.sprintf "max(%d, %d*T_%d%+d)" cl s k lo_off,
              Printf.sprintf "min(%d, %d*T_%d%+d)" ch s k
                (s - 1 + hi_off) ))
    | None ->
      Array.init dims (fun k ->
          ( Printf.sprintf "_%s_%d_%d[_tix][%d]" boxes_tag tg.Plan.gid p
              (2 * k),
            Printf.sprintf "_%s_%d_%d[_tix][%d]" boxes_tag tg.Plan.gid p
              ((2 * k) + 1) ))
  in
  (* names of the hoisted per-member bound/stride variables *)
  let rvar p k lo = Printf.sprintf "%s%d_%d" (if lo then "lb_" else "ub_") p k in
  let cvar p k lo = Printf.sprintf "%s%d_%d" (if lo then "cl_" else "cu_") p k in
  let ovar p k lo = Printf.sprintf "%s%d_%d" (if lo then "ol_" else "oh_") p k in
  let svar p k = Printf.sprintf "st_%d_%d" p k in
  let scratch_store p =
    match members.(p).Plan.scratch_slot with
    | Some s ->
      { cname = Printf.sprintf "_buf_%d_%d" tg.Plan.gid s;
        cstrides = Array.init dims (svar p);
        corg = Array.init dims (fun k -> rvar p k true) }
    | None -> invalid_arg "C_emit: scratch read of an unbuffered member"
  in
  Array.iteri
    (fun p (m : Plan.member) ->
      let msz = m.Plan.sizes in
      let stores =
        Array.mapi
          (fun i src ->
            match src with
            | Plan.P_input idx -> input_store idx
            | Plan.P_array a ->
              array_store a ~of_func:m.Plan.compiled.Compile.producers.(i)
            | Plan.P_member q -> scratch_store q)
          m.Plan.src_of
      in
      (match m.Plan.scratch_slot with
      | Some _ ->
        (* demand-region bounds, runtime strides, rim fill, compute *)
        let bounds =
          bound_exprs affine_r "rb" p m (fun m k ->
              (0, m.Plan.sizes.(k) + 1))
        in
        Array.iteri
          (fun k (lo, hi) ->
            pf fmt "%sconst int %s = %s, %s = %s;@," pad (rvar p k true) lo
              (rvar p k false) hi)
          bounds;
        (* strides from the per-tile region widths — the engine's
           region_source layout, so addressing is identical *)
        pf fmt "%sconst int %s = 1;@," pad (svar p (dims - 1));
        for k = dims - 2 downto 0 do
          pf fmt "%sconst int %s = %s * (%s - %s + 1);@," pad (svar p k)
            (svar p (k + 1))
            (rvar p (k + 1) false)
            (rvar p (k + 1) true)
        done;
        for k = 0 to dims - 1 do
          pf fmt "%sconst int %s = max(%s, 1), %s = min(%s, %d);@," pad
            (cvar p k true) (rvar p k true) (cvar p k false) (rvar p k false)
            msz.(k)
        done;
        let dst = scratch_store p in
        pf fmt "%s{ /* stage %s */@," pad m.Plan.func.Func.name;
        emit_rim fmt ~dims ~dst
          ~lb:(Array.init dims (fun k -> rvar p k true))
          ~ub:(Array.init dims (fun k -> rvar p k false))
          ~msz ~bnd:m.Plan.compiled.Compile.boundary ~indent:(indent + 2);
        emit_cases fmt ~member:m ~stores ~dst
          ~lb:(Array.init dims (fun k -> cvar p k true))
          ~ub:(Array.init dims (fun k -> cvar p k false))
          ~indent:(indent + 2);
        (match m.Plan.array_id with
        | None -> pf fmt "%s}@," pad
        | Some a ->
          (* live-out with in-group readers: publish the own slice *)
          Array.iteri
            (fun k (lo, hi) ->
              pf fmt "%sconst int %s = %s, %s = %s;@," pad (ovar p k true)
                lo (ovar p k false) hi)
            (bound_exprs affine_o "ob" p m (fun m k ->
                 (1, m.Plan.sizes.(k))));
          emit_copy fmt ~dims ~src:dst
            ~dst:(array_store a ~of_func:m.Plan.func.Func.id)
            ~lb:(Array.init dims (fun k -> ovar p k true))
            ~ub:(Array.init dims (fun k -> ovar p k false))
            ~indent:(indent + 2);
          pf fmt "%s}@," pad)
      | None -> (
        match m.Plan.array_id with
        | Some a ->
          (* live-out without in-group readers: compute the own slice
             directly into the full array *)
          Array.iteri
            (fun k (lo, hi) ->
              pf fmt "%sconst int %s = %s, %s = %s;@," pad (ovar p k true)
                lo (ovar p k false) hi)
            (bound_exprs affine_o "ob" p m (fun m k ->
                 (1, m.Plan.sizes.(k))));
          pf fmt "%s{ /* stage %s */@," pad m.Plan.func.Func.name;
          emit_cases fmt ~member:m ~stores
            ~dst:(array_store a ~of_func:m.Plan.func.Func.id)
            ~lb:(Array.init dims (fun k -> ovar p k true))
            ~ub:(Array.init dims (fun k -> ovar p k false))
            ~indent:(indent + 2);
          pf fmt "%s}@," pad
        | None ->
          invalid_arg
            (m.Plan.func.Func.name ^ ": member with neither scratch nor array")))
      )
    members;
  for k = dims - 1 downto 0 do
    pf fmt "  %s}@," (String.make (2 * k) ' ')
  done

(* ------------------------------------------------------------------ *)
(* Diamond group emission: the equivalent untiled time loop.

   Each (t, x) value is computed exactly once under the diamond/skewed
   schedule, so the plain time loop below is bit-identical to the tiled
   execution — the tiling only reorders whole-row computations. *)

let emit_diamond fmt ~(input_store : int -> cstore)
    ~(array_store : int -> of_func:int -> cstore) (dg : Plan.diamond_group) =
  let nsteps = Array.length dg.Plan.steps in
  let last = dg.Plan.steps.(nsteps - 1) in
  let dims = Array.length dg.Plan.sizes in
  let scheme_str =
    match dg.Plan.scheme with
    | Plan.Sched_diamond { sigma } ->
      Printf.sprintf "diamond time tiling, sigma=%d" sigma
    | Plan.Sched_skewed { tau; sigma } ->
      Printf.sprintf "time-skewed (wavefront) tiling, tau=%d sigma=%d" tau
        sigma
  in
  pf fmt "@,  /* ---- group %d: %s, %d steps ---- */@," dg.Plan.gid scheme_str
    nsteps;
  pf fmt "  /* executed here as the equivalent untiled time loop: the@,";
  pf fmt "   * schedule computes every (t, x) row exactly once, so results@,";
  pf fmt "   * are bit-identical; see lib/poly for the tiled wavefronts */@,";
  let out_arr =
    match last.Plan.array_id with
    | Some a -> a
    | None -> invalid_arg "C_emit: diamond chain without output array"
  in
  let boundary =
    match last.Plan.func.Func.boundary with
    | Func.Dirichlet v -> v
    | Func.Ghost_input -> 0.0
  in
  let len =
    Array.fold_left (fun acc s -> acc * (s + 2)) 1 dg.Plan.sizes
  in
  let tmp_name = Printf.sprintf "_dtmp_%d" dg.Plan.gid in
  let out_store = array_store out_arr ~of_func:last.Plan.func.Func.id in
  let tmp_store = full_store tmp_name dg.Plan.sizes in
  pf fmt "  {@,";
  pf fmt "    double *%s = (double *) pool_allocate(sizeof(double) * %d);@,"
    tmp_name len;
  let ghost_ub = Array.map (fun s -> string_of_int (s + 1)) dg.Plan.sizes in
  List.iter
    (fun st ->
      emit_rim fmt ~dims ~dst:st ~lb:(zeros dims) ~ub:ghost_ub
        ~msz:dg.Plan.sizes ~bnd:boundary ~indent:4)
    [ out_store; tmp_store ];
  (* buffer holding iterate t: the final step lands in the output array *)
  let buf_of t = if (nsteps - t) mod 2 = 0 then out_store else tmp_store in
  let init_store =
    match dg.Plan.init_src with
    | None -> None
    | Some (Plan.P_input idx) -> Some (input_store idx)
    | Some (Plan.P_array a) ->
      let pid =
        dg.Plan.steps.(0).Plan.compiled.Compile.producers.(dg.Plan.prev_pos.(0))
      in
      Some (array_store a ~of_func:pid)
    | Some (Plan.P_member _) -> invalid_arg "C_emit: bad diamond init source"
  in
  for t = 1 to nsteps do
    let step = t - 1 in
    let m = dg.Plan.steps.(step) in
    let stores =
      Array.mapi
        (fun i src ->
          if i = dg.Plan.prev_pos.(step) then
            if t = 1 then
              match init_store with
              | Some s -> s
              | None -> invalid_arg "C_emit: missing diamond init source"
            else buf_of (t - 1)
          else
            match src with
            | Plan.P_input idx -> input_store idx
            | Plan.P_array a ->
              array_store a ~of_func:m.Plan.compiled.Compile.producers.(i)
            | Plan.P_member _ ->
              invalid_arg "C_emit: scratch read inside a diamond chain")
        m.Plan.src_of
    in
    pf fmt "    { /* t = %d: stage %s */@," t m.Plan.func.Func.name;
    emit_cases fmt ~member:m ~stores ~dst:(buf_of t)
      ~lb:(Array.make dims "1")
      ~ub:(Array.map string_of_int dg.Plan.sizes)
      ~indent:6;
    pf fmt "    }@,"
  done;
  pf fmt "    pool_deallocate(%s);@,  }@," tmp_name

(* ------------------------------------------------------------------ *)
(* Whole-pipeline body                                                  *)

let emit_body fmt (plan : Plan.t) =
  let pipeline = plan.Plan.pipeline in
  let n = plan.Plan.n in
  let func_sizes id =
    let f = Pipeline.func pipeline id in
    Array.map (fun s -> Sizeexpr.eval ~n s) f.Func.sizes
  in
  let array_store a ~of_func =
    full_store (Printf.sprintf "_arr_%d" a) (func_sizes of_func)
  in
  let input_store i =
    let id = plan.Plan.inputs.(i) in
    full_store (Pipeline.func pipeline id).Func.name (func_sizes id)
  in
  let in_names =
    Array.to_list plan.Plan.inputs
    |> List.map (fun id -> (Pipeline.func pipeline id).Func.name)
  in
  pf fmt "void pipeline_%s(int N, %s, double **out)@,{@,"
    (c_ident (Pipeline.name pipeline))
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "double *%s" s) in_names));
  pf fmt "  (void) N;@,";
  (* full arrays with their users *)
  let users = Array.make (Array.length plan.Plan.arrays) [] in
  Array.iter
    (fun g ->
      let ms =
        match g with
        | Plan.G_tiled tg -> tg.Plan.members
        | Plan.G_diamond dg -> dg.Plan.steps
      in
      Array.iter
        (fun (m : Plan.member) ->
          match m.Plan.array_id with
          | Some a -> users.(a) <- m.Plan.func.Func.name :: users.(a)
          | None -> ())
        ms)
    plan.Plan.groups;
  Array.iteri
    (fun a (info : Plan.array_info) ->
      pf fmt "  /* users: [%s] */@," (String.concat "; " (List.rev users.(a)));
      pf fmt "  double *_arr_%d = (double *) pool_allocate(sizeof(double) * %d);@,"
        a info.Plan.len)
    plan.Plan.arrays;
  Array.iter
    (fun g ->
      match g with
      | Plan.G_tiled tg -> emit_tiled fmt ~input_store ~array_store tg
      | Plan.G_diamond dg -> emit_diamond fmt ~input_store ~array_store dg)
    plan.Plan.groups;
  (* releases; output arrays are returned to the caller *)
  Array.iteri
    (fun a (info : Plan.array_info) ->
      if not info.Plan.output then pf fmt "  pool_deallocate(_arr_%d);@," a)
    plan.Plan.arrays;
  List.iteri
    (fun i (_, a) -> pf fmt "  out[%d] = _arr_%d;@," i a)
    plan.Plan.output_arrays;
  pf fmt "}@,"

let emit_prelude fmt (plan : Plan.t) =
  pf fmt "/* Generated by PolyMG (OCaml engine): pipeline %s, N = %d, variant %s */@,"
    (Pipeline.name plan.Plan.pipeline)
    plan.Plan.n
    (Options.name plan.Plan.opts);
  pf fmt "#include <math.h>@,#include <stddef.h>@,@,";
  pf fmt "#ifndef max@,#define max(a, b) ((a) > (b) ? (a) : (b))@,#endif@,";
  pf fmt "#ifndef min@,#define min(a, b) ((a) < (b) ? (a) : (b))@,#endif@,";
  pf fmt "/* floor division, matching the engine for negative numerators */@,";
  pf fmt "#define FDIV(a, b) ((a) >= 0 ? (a) / (b) : -((-(a) + (b) - 1) / (b)))@,"

let emit fmt (plan : Plan.t) =
  Format.pp_open_vbox fmt 0;
  emit_prelude fmt plan;
  pf fmt "extern void *pool_allocate(size_t);@,";
  pf fmt "extern void pool_deallocate(void *);@,";
  pf fmt "extern double eval_point(void);@,@,";
  emit_body fmt plan;
  Format.pp_close_box fmt ()

let to_string plan = Format.asprintf "%a" emit plan

let pipeline_symbol (plan : Plan.t) =
  "pipeline_" ^ c_ident (Pipeline.name plan.Plan.pipeline)

let line_count plan =
  to_string plan |> String.split_on_char '\n' |> List.length

(* ------------------------------------------------------------------ *)
(* Self-contained driver emission (conformance harness)                 *)

let runnable (plan : Plan.t) =
  let issues = ref [] in
  let check_member (m : Plan.member) =
    List.iter
      (fun (case : Compile.case_t) ->
        match case.Compile.kernel with
        | Compile.Lin _ -> ()
        | Compile.Gen _ ->
          issues :=
            (m.Plan.func.Func.name ^ ": non-affine definition (Gen kernel)")
            :: !issues)
      m.Plan.compiled.Compile.cases
  in
  Array.iter
    (fun g ->
      match g with
      | Plan.G_tiled tg -> Array.iter check_member tg.Plan.members
      | Plan.G_diamond dg ->
        Array.iter check_member dg.Plan.steps;
        (match dg.Plan.init_src with
        | Some (Plan.P_member _) ->
          issues := "diamond chain with scratch init source" :: !issues
        | _ -> ()))
    plan.Plan.groups;
  match List.sort_uniq String.compare !issues with
  | [] -> Ok ()
  | l -> Error (String.concat "; " l)

let driver_to_string (plan : Plan.t) =
  match runnable plan with
  | Error e -> Error e
  | Ok () ->
    let pipeline = plan.Plan.pipeline in
    let n = plan.Plan.n in
    let func_sizes id =
      let f = Pipeline.func pipeline id in
      Array.map (fun s -> Sizeexpr.eval ~n s) f.Func.sizes
    in
    let buf = Buffer.create 65536 in
    let fmt = Format.formatter_of_buffer buf in
    Format.pp_open_vbox fmt 0;
    emit_prelude fmt plan;
    pf fmt "#include <stdio.h>@,#include <stdlib.h>@,@,";
    pf fmt "static void *pool_allocate(size_t n) { return calloc(n, 1); }@,";
    pf fmt "static void pool_deallocate(void *p) { free(p); }@,@,";
    pf fmt "/* deterministic input fill (FNV-1a over the multi-index),@,";
    pf fmt "   mirrored exactly by Repro_mg.Conformance.fill_val */@,";
    pf fmt "static double fill_val(int input, const int *idx, int dims)@,{@,";
    pf fmt "  unsigned int h = 2166136261u;@,";
    pf fmt "  h = (h ^ (unsigned int) input) * 16777619u;@,";
    pf fmt "  for (int k = 0; k < dims; k++)@,";
    pf fmt "    h = (h ^ (unsigned int) idx[k]) * 16777619u;@,";
    pf fmt "  return (double) (h & 0xFFFFFu) / 1048576.0 - 0.5;@,}@,@,";
    emit_body fmt plan;
    (* main: fill inputs, run the pipeline, dump every output grid *)
    pf fmt "@,int main(int argc, char **argv)@,{@,";
    pf fmt "  if (argc < 2) { fprintf(stderr, \"usage: %%s OUT.bin\\n\", argv[0]); return 2; }@,";
    Array.iteri
      (fun i id ->
        let f = Pipeline.func pipeline id in
        let sizes = func_sizes id in
        let dims = Array.length sizes in
        let len = Array.fold_left (fun acc s -> acc * (s + 2)) 1 sizes in
        let strides = strides_of_sizes sizes in
        pf fmt "  double *%s = (double *) calloc(%d, sizeof(double));@,"
          f.Func.name len;
        pf fmt "  { int idx[%d];@," dims;
        for k = 0 to dims - 1 do
          pf fmt "  %sfor (idx[%d] = 1; idx[%d] <= %d; idx[%d]++)@,"
            (String.make (2 * k) ' ')
            k k sizes.(k) k
        done;
        let off =
          String.concat " + "
            (List.init dims (fun k ->
                 if strides.(k) = 1 then Printf.sprintf "idx[%d]" k
                 else Printf.sprintf "idx[%d]*%d" k strides.(k)))
        in
        pf fmt "  %s%s[%s] = fill_val(%d, idx, %d);@,"
          (String.make (2 * dims) ' ')
          f.Func.name off i dims;
        pf fmt "  }@,")
      plan.Plan.inputs;
    let nout = List.length plan.Plan.output_arrays in
    pf fmt "  double *outs[%d] = {0};@," (Int.max 1 nout);
    pf fmt "  pipeline_%s(%d, %s, outs);@,"
      (c_ident (Pipeline.name pipeline))
      n
      (String.concat ", "
         (Array.to_list plan.Plan.inputs
         |> List.map (fun id -> (Pipeline.func pipeline id).Func.name)));
    pf fmt "  FILE *fp = fopen(argv[1], \"wb\");@,";
    pf fmt "  if (!fp) { perror(argv[1]); return 1; }@,";
    List.iteri
      (fun i (fid, _) ->
        let sizes = func_sizes fid in
        let len = Array.fold_left (fun acc s -> acc * (s + 2)) 1 sizes in
        pf fmt "  if (fwrite(outs[%d], sizeof(double), %d, fp) != %d) return 1;@,"
          i len len)
      plan.Plan.output_arrays;
    pf fmt "  fclose(fp);@,  return 0;@,}@,";
    Format.pp_close_box fmt ();
    Format.pp_print_flush fmt ();
    Ok (Buffer.contents buf)
