(* Native execution backend: the emitted C of a plan (C_emit), wrapped
   in a tiny entry function, compiled by the system C compiler into a
   shared object, dlopen'd, and called directly on the caller's grid
   buffers.  Everything observable about it is counted:

     native.compiles       kernels compiled (cache misses)
     native.compile_ms     total wall-clock spent in the C compiler
     native.cache_hits     loads served from memory or the disk cache
     native.cache_rejects  torn/corrupt cached .so files rejected
     native.kernel_calls   entry-point invocations
     native.fallbacks      Auto-mode falls back to the interpreter

   Compiled kernels are cached on disk keyed by plan digest + compiler
   identity + flags + emitter version.  Installs go through
   Snapshot.atomic_write_string (temp + fsync + rename), and every
   cached .so carries a CRC-32 sidecar that is re-verified before
   dlopen — concurrent solves never observe a torn shared object, and a
   corrupt one is rejected (counted) and recompiled. *)

open Repro_ir

module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Snapshot = Repro_runtime.Snapshot
module Json = Repro_runtime.Json
module Grid = Repro_grid.Grid
module Buf = Repro_grid.Buf

external ndl_open : string -> nativeint = "polymg_native_dlopen"
external ndl_sym : nativeint -> string -> nativeint = "polymg_native_dlsym"
external ndl_close : nativeint -> unit = "polymg_native_dlclose"
external ncall : nativeint -> Buf.data array -> int = "polymg_native_call"

exception Unavailable of string

let emitter_version = "polymg.native/1"
let entry_symbol = "polymg_entry"
let meta_schema = "polymg.native-meta/1"
let cflags = "-O2 -std=c99 -ffp-contract=off -fPIC -shared"

let c_compiles = Telemetry.counter "native.compiles"
let c_compile_ms = Telemetry.counter "native.compile_ms"
let c_cache_hits = Telemetry.counter "native.cache_hits"
let c_cache_rejects = Telemetry.counter "native.cache_rejects"
let c_kernel_calls = Telemetry.counter "native.kernel_calls"
let c_fallbacks = Telemetry.counter "native.fallbacks"

(* ------------------------------------------------------------------ *)
(* Compiler discovery                                                   *)

let compiler_override = ref None
let set_compiler_override c = compiler_override := c

let quiet_ok cmd = Sys.command (cmd ^ " >/dev/null 2>&1") = 0

(* gcc-then-cc discovery, mirroring the conformance harness.  An
   override (tests) or POLYMG_CC is taken verbatim, without probing, so
   a deliberately broken compiler exercises the compile-failure path. *)
let cc () =
  match !compiler_override with
  | Some c -> Some c
  | None ->
    (match Sys.getenv_opt "POLYMG_CC" with
     | Some c when String.trim c <> "" -> Some c
     | _ ->
       List.find_opt
         (fun c -> quiet_ok (Filename.quote c ^ " --version"))
         [ "gcc"; "cc" ])

let available () = cc () <> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* first --version line, cached per compiler name: part of the cache
   key, so upgrading the toolchain invalidates cached kernels *)
let cc_identity_tbl : (string, string) Hashtbl.t = Hashtbl.create 4

let cc_identity compiler =
  match Hashtbl.find_opt cc_identity_tbl compiler with
  | Some id -> id
  | None ->
    let tmp = Filename.temp_file "polymg_ccid" ".txt" in
    let version =
      if
        Sys.command
          (Printf.sprintf "%s --version >%s 2>/dev/null"
             (Filename.quote compiler) (Filename.quote tmp))
        = 0
      then
        match String.split_on_char '\n' (read_file tmp) with
        | first :: _ -> String.trim first
        | [] -> ""
      else ""
    in
    (try Sys.remove tmp with Sys_error _ -> ());
    let id = compiler ^ "|" ^ version in
    Hashtbl.replace cc_identity_tbl compiler id;
    id

(* ------------------------------------------------------------------ *)
(* Cache directory                                                      *)

let cache_dir_override = ref None
let set_cache_dir d = cache_dir_override := d

let cache_dir () =
  match !cache_dir_override with
  | Some d -> d
  | None ->
    (match Sys.getenv_opt "POLYMG_NATIVE_CACHE" with
     | Some d when String.trim d <> "" -> d
     | _ ->
       Filename.concat (Filename.get_temp_dir_name ()) "polymg-native-cache")

let rec ensure_dir d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Entry-source emission                                                *)

let align64 bytes = (bytes + 63) land lnot 63

let ghost_len sizes =
  Array.fold_left (fun acc s -> acc * (s + 2)) 1 sizes

(* Exact allocation total of the emitted pipeline: one pool_allocate
   per full array plus one per diamond modulo buffer, each rounded to
   the bump allocator's 64-byte granularity. *)
let arena_bytes (plan : Plan.t) =
  let arrays =
    Array.fold_left
      (fun acc (info : Plan.array_info) -> acc + align64 (8 * info.Plan.len))
      0 plan.Plan.arrays
  in
  let diamonds =
    Array.fold_left
      (fun acc g ->
        match g with
        | Plan.G_tiled _ -> acc
        | Plan.G_diamond dg -> acc + align64 (8 * ghost_len dg.Plan.sizes))
      0 plan.Plan.groups
  in
  max 64 (arrays + diamonds)

let entry_source (plan : Plan.t) =
  match C_emit.runnable plan with
  | Error e -> Error e
  | Ok () ->
    let pipeline = plan.Plan.pipeline in
    let func_sizes id =
      let f = Pipeline.func pipeline id in
      Array.map (fun s -> Sizeexpr.eval ~n:plan.Plan.n s) f.Func.sizes
    in
    let nin = Array.length plan.Plan.inputs in
    let nout = List.length plan.Plan.output_arrays in
    let b = Buffer.create 65536 in
    let pf fmt = Printf.bprintf b fmt in
    Buffer.add_string b (C_emit.to_string plan);
    pf "\n/* ---- native backend glue (%s) ---- */\n" emitter_version;
    pf "#include <stdlib.h>\n#include <string.h>\n\n";
    pf "#define POLYMG_ARENA_BYTES %d\n\n" (arena_bytes plan);
    pf "static unsigned char *_polymg_arena = 0;\n";
    pf "static size_t _polymg_arena_off = 0;\n";
    pf "static int _polymg_arena_overflow = 0;\n\n";
    pf "/* bump allocator over a fixed arena: the pipeline's allocation\n";
    pf "   total is known at emit time, deallocation is a no-op and the\n";
    pf "   offset resets on every entry call.  An overflow (impossible\n";
    pf "   unless the emitter and the sizing above disagree) falls back\n";
    pf "   to malloc and is reported through the entry's return code,\n";
    pf "   so it can never corrupt memory silently. */\n";
    pf "void *pool_allocate(size_t sz)\n{\n";
    pf "  size_t rounded = (sz + 63u) & ~((size_t) 63u);\n";
    pf "  if (_polymg_arena_off + rounded > POLYMG_ARENA_BYTES) {\n";
    pf "    _polymg_arena_overflow = 1;\n";
    pf "    return calloc(sz ? sz : 1, 1);\n  }\n";
    pf "  void *p = (void *) (_polymg_arena + _polymg_arena_off);\n";
    pf "  _polymg_arena_off += rounded;\n";
    pf "  return p;\n}\n\n";
    pf "void pool_deallocate(void *p) { (void) p; }\n\n";
    pf "/* unreachable: runnable plans contain no Gen kernels */\n";
    pf "double eval_point(void) { return 0.0; }\n\n";
    pf "int %s(double **bufs)\n{\n" entry_symbol;
    pf "  if (!_polymg_arena) {\n";
    pf "    _polymg_arena = (unsigned char *) calloc(1, POLYMG_ARENA_BYTES);\n";
    pf "    if (!_polymg_arena) return 1;\n  }\n";
    pf "  _polymg_arena_off = 0;\n";
    pf "  double *outs[%d] = {0};\n" (max 1 nout);
    pf "  %s(%d, %s, outs);\n" (C_emit.pipeline_symbol plan) plan.Plan.n
      (String.concat ", " (List.init nin (Printf.sprintf "bufs[%d]")));
    List.iteri
      (fun i (fid, _) ->
        pf "  memcpy(bufs[%d], outs[%d], %d * sizeof(double));\n" (nin + i) i
          (ghost_len (func_sizes fid)))
      plan.Plan.output_arrays;
    pf "  return _polymg_arena_overflow ? 2 : 0;\n}\n";
    Ok (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Disk cache                                                           *)

let cache_key (plan : Plan.t) ~compiler =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ emitter_version;
            Plan.digest plan;
            cc_identity compiler;
            cflags ]))

let meta_line ~crc ~size = Printf.sprintf "%s %08x %d\n" meta_schema crc size

let meta_matches ~meta_path ~so_bytes =
  match read_file meta_path with
  | exception Sys_error _ -> false
  | text ->
    (match Scanf.sscanf text "%s %x %d" (fun s crc size -> (s, crc, size)) with
     | exception _ -> false
     | schema, crc, size ->
       schema = meta_schema
       && size = String.length so_bytes
       && crc = Snapshot.crc32 so_bytes)

let truncate_log s =
  let s = String.trim s in
  if String.length s <= 400 then s else String.sub s 0 400 ^ "..."

let compile_so plan ~compiler ~key =
  match entry_source plan with
  | Error e -> Error ("plan not emittable: " ^ e)
  | Ok source ->
    let dir = cache_dir () in
    ensure_dir dir;
    let src_path = Filename.concat dir (key ^ ".c") in
    let log_path = Filename.concat dir (key ^ ".log") in
    let so_path = Filename.concat dir (key ^ ".so") in
    Snapshot.atomic_write_string ~path:src_path source;
    let tmp_so = Filename.temp_file "polymg_native" ".so" in
    let cmd =
      Printf.sprintf "%s %s -o %s %s -lm >%s 2>&1" compiler cflags
        (Filename.quote tmp_so) (Filename.quote src_path)
        (Filename.quote log_path)
    in
    let t0 = Telemetry.now_ns () in
    let rc = Sys.command cmd in
    let ms = (Telemetry.now_ns () - t0) / 1_000_000 in
    Telemetry.add c_compile_ms ms;
    if rc <> 0 then begin
      (try Sys.remove tmp_so with Sys_error _ -> ());
      let log = try read_file log_path with Sys_error _ -> "" in
      let msg =
        Printf.sprintf "compile failed (%s, exit %d): %s" compiler rc
          (truncate_log log)
      in
      if Flightrec.on () then Flightrec.emit (Flightrec.Note ("native: " ^ msg));
      Error msg
    end
    else begin
      let so_bytes = read_file tmp_so in
      (try Sys.remove tmp_so with Sys_error _ -> ());
      Snapshot.atomic_write_string ~path:so_path so_bytes;
      Snapshot.atomic_write_string ~path:(Filename.concat dir (key ^ ".meta"))
        (meta_line ~crc:(Snapshot.crc32 so_bytes) ~size:(String.length so_bytes));
      Telemetry.add c_compiles 1;
      Ok so_path
    end

(* ------------------------------------------------------------------ *)
(* Loaded kernels                                                       *)

type kernel = {
  k_key : string;
  k_path : string;
  k_handle : nativeint;
  k_entry : nativeint;
  k_nin : int;
  (* (func id, expected whole-buffer length), inputs then outputs, in
     the emitted parameter order *)
  k_bufs : (int * int) array;
  (* the .so has one static arena: concurrent calls to the same kernel
     are serialized here *)
  k_lock : Mutex.t;
}

let so_path k = k.k_path

let loaded : (string, kernel) Hashtbl.t = Hashtbl.create 8
let loaded_lock = Mutex.create ()

let unload_all () =
  Mutex.protect loaded_lock (fun () ->
      Hashtbl.iter (fun _ k -> try ndl_close k.k_handle with _ -> ()) loaded;
      Hashtbl.reset loaded)

let buffer_signature (plan : Plan.t) =
  let pipeline = plan.Plan.pipeline in
  let flen id =
    let f = Pipeline.func pipeline id in
    ghost_len (Array.map (fun s -> Sizeexpr.eval ~n:plan.Plan.n s) f.Func.sizes)
  in
  let ins = Array.map (fun id -> (id, flen id)) plan.Plan.inputs in
  let outs =
    Array.of_list
      (List.map (fun (fid, _) -> (fid, flen fid)) plan.Plan.output_arrays)
  in
  Array.append ins outs

let dlopen_kernel plan ~key ~path =
  match ndl_open path with
  | exception Failure e -> Error ("dlopen: " ^ e)
  | handle ->
    (match ndl_sym handle entry_symbol with
     | exception Failure e ->
       ndl_close handle;
       Error ("dlsym: " ^ e)
     | entry ->
       Ok
         { k_key = key;
           k_path = path;
           k_handle = handle;
           k_entry = entry;
           k_nin = Array.length plan.Plan.inputs;
           k_bufs = buffer_signature plan;
           k_lock = Mutex.create () })

(* a cached .so is only trusted when its CRC sidecar matches the bytes
   on disk — a torn or corrupt file is rejected deterministically
   instead of being handed to the dynamic loader *)
let try_disk_cache plan ~key ~path =
  let meta_path = Filename.concat (cache_dir ()) (key ^ ".meta") in
  if not (Sys.file_exists path) then None
  else
    let so_bytes = try read_file path with Sys_error _ -> "" in
    if not (meta_matches ~meta_path ~so_bytes) then begin
      Telemetry.add c_cache_rejects 1;
      if Flightrec.on () then
        Flightrec.emit
          (Flightrec.Note ("native: rejected corrupt cached kernel " ^ path));
      None
    end
    else
      match dlopen_kernel plan ~key ~path with
      | Ok k -> Some k
      | Error e ->
        Telemetry.add c_cache_rejects 1;
        if Flightrec.on () then
          Flightrec.emit
            (Flightrec.Note
               ("native: rejected unloadable cached kernel " ^ path ^ ": " ^ e));
        None

let load (plan : Plan.t) =
  match cc () with
  | None -> Error "no C compiler found (tried gcc, cc)"
  | Some compiler ->
    (match C_emit.runnable plan with
     | Error e -> Error ("plan not emittable: " ^ e)
     | Ok () ->
       Mutex.protect loaded_lock (fun () ->
           let key = cache_key plan ~compiler in
           match Hashtbl.find_opt loaded key with
           | Some k ->
             Telemetry.add c_cache_hits 1;
             Ok k
           | None ->
             let path = Filename.concat (cache_dir ()) (key ^ ".so") in
             (match try_disk_cache plan ~key ~path with
              | Some k ->
                Telemetry.add c_cache_hits 1;
                Hashtbl.replace loaded key k;
                Ok k
              | None ->
                (match compile_so plan ~compiler ~key with
                 | Error e -> Error e
                 | Ok path ->
                   (match dlopen_kernel plan ~key ~path with
                    | Error e -> Error ("freshly compiled kernel: " ^ e)
                    | Ok k ->
                      Hashtbl.replace loaded key k;
                      Ok k)))))

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)

let run k ~inputs ~outputs =
  let pick lst what (fid, expected) =
    match List.assoc_opt fid lst with
    | None ->
      invalid_arg
        (Printf.sprintf "Native.run: missing %s grid for func %d" what fid)
    | Some g ->
      let buf = g.Grid.buf in
      if Buf.len buf <> expected then
        invalid_arg
          (Printf.sprintf
             "Native.run: %s grid for func %d has %d elements, kernel expects \
              %d"
             what fid (Buf.len buf) expected);
      buf.Buf.data
  in
  let bufs =
    Array.mapi
      (fun i sg -> pick (if i < k.k_nin then inputs else outputs)
           (if i < k.k_nin then "input" else "output") sg)
      k.k_bufs
  in
  Telemetry.add c_kernel_calls 1;
  let rc = Mutex.protect k.k_lock (fun () -> ncall k.k_entry bufs) in
  if rc <> 0 then
    failwith
      (Printf.sprintf "Native.run: kernel %s failed (rc=%d, %s)" k.k_key rc
         (if rc = 2 then "arena overflow" else "arena allocation failed"))

(* ------------------------------------------------------------------ *)
(* Observable fallback                                                  *)

(* Auto-mode fallback bookkeeping, called by the solver when it reverts
   to the interpreter: counted, logged, and filed as an incident so a
   silently-slow deployment is impossible. *)
let note_fallback ~digest ~variant ~reason =
  Telemetry.add c_fallbacks 1;
  if Flightrec.on () then begin
    Flightrec.emit
      (Flightrec.Note
         (Printf.sprintf "native: falling back to interpreter (%s)" reason));
    ignore
      (Flightrec.incident ~kind:"native-fallback"
         ~detail:
           [ ("reason", Json.Str reason);
             ("plan_digest", Json.Str digest);
             ("variant", Json.Str variant) ]
         ())
  end
