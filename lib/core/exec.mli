(** Plan execution: runs one pipeline invocation (one multigrid cycle).

    The caller keeps a {!runtime} alive across cycles: its memory pool is
    what makes §3.2.3 pooling effective (arrays are physically allocated
    during the first cycle and recycled by all later ones), and its domain
    pool is reused by every parallel region. *)

type runtime = {
  par : Repro_runtime.Parallel.t;
  pool : Repro_runtime.Mempool.t;
}

val runtime : ?domains:int -> ?poison:bool -> unit -> runtime
(** Fresh runtime; [domains] defaults to 1.  [poison] (default false)
    creates the memory pool in poison/canary mode (see {!Repro_runtime.Mempool}). *)

val free_runtime : runtime -> unit

val with_runtime : ?domains:int -> ?poison:bool -> (runtime -> 'a) -> 'a
(** Scoped runtime: torn down when [f] returns {e or raises}, so domain
    pools are never leaked past a failing stepper or residual check. *)

(** {2 Fault injection (test/bench harness hook)} *)

type fault_injector = gid:int -> stage:string -> Compile.source -> unit
(** Called right after a stage writes its destination binding, allowing a
    harness to corrupt intermediate buffers between stages.  Runs on
    worker domains when [domains > 1]. *)

val set_fault_injector : fault_injector option -> unit
(** Installs (or with [None] removes) the global injector.  Testing only;
    when unset the per-stage overhead is one ref read. *)

val run :
  Plan.t -> runtime -> inputs:(int * Repro_grid.Grid.t) list ->
  outputs:(int * Repro_grid.Grid.t) list -> unit
(** Executes the plan.  [inputs] and [outputs] map pipeline func ids to
    caller-owned grids; output grids are written in place (interior and
    ghost).  Input grids are never modified.

    @raise Invalid_argument when a grid's extents do not match the plan's
    problem size, or when an input/output id is missing. *)

val points_computed : Plan.t -> int
(** Total grid points one execution evaluates, including overlapped-tiling
    redundancy — the work metric behind the redundancy statistics. *)

val points_domain : Plan.t -> int
(** Useful grid points per execution: the sum of every member's interior
    domain.  [points_computed plan / points_domain plan - 1] is the
    redundant-computation fraction of Fig. 11a. *)
