(** Executable plans: the output of the PolyMG "code generator".

    A plan fixes, for one pipeline at one concrete problem size: the
    grouping, the tile shapes, every scratchpad slot and its size, the
    full-array storage mapping, the per-array acquire/release group, and
    the compiled kernel of every stage.  {!Exec} then runs plans against
    input grids; {!C_emit} pretty-prints the C code a plan corresponds
    to. *)

type producer_src =
  | P_input of int  (** read a pipeline input (index into input list) *)
  | P_array of int  (** read a full array (live-in from an earlier group) *)
  | P_member of int  (** read a same-group member's scratchpad *)

type member = {
  func : Repro_ir.Func.t;
  compiled : Compile.t;
  sizes : int array;  (** concrete interior sizes *)
  scratch_slot : int option;  (** set iff the member has in-group readers *)
  array_id : int option;  (** set iff the member is a group live-out *)
  src_of : producer_src array;  (** aligned with [compiled.producers] *)
}

type tiled_group = {
  gid : int;
  geom : Repro_poly.Regions.t;
  members : member array;  (** execution order *)
  tile_sizes : int array;
  tiles : Repro_poly.Box.t array;
  scratch_slot_len : int array;  (** elements per scratch slot *)
}

type time_scheme =
  | Sched_diamond of { sigma : int }
  | Sched_skewed of { tau : int; sigma : int }

type diamond_group = {
  gid : int;
  steps : member array;  (** the smoothing chain; last one is live-out *)
  scheme : time_scheme;
  sizes : int array;
  prev_pos : int array;
      (** for each step, the index in [src_of]/producers of the previous
          iterate (bound to a modulo buffer at execution); [-1] for a step
          that does not read the previous iterate (zero-init step 0) *)
  init_src : producer_src option;
      (** where step 0 reads the initial iterate; [None] for zero-init
          chains whose first step reads no previous iterate *)
}

type group_exec =
  | G_tiled of tiled_group
  | G_diamond of diamond_group

type array_info = {
  len : int;  (** elements, max over the functions mapped to this array *)
  first_group : int;  (** topological group index that acquires it *)
  last_group : int;  (** group index after which it can be released *)
  output : bool;  (** pipeline output: dedicated, never pooled away *)
}

type t = {
  uid : int;  (** unique per plan; keys per-domain scratchpad caches *)
  pipeline : Repro_ir.Pipeline.t;
  opts : Options.t;
  n : int;
  groups : group_exec array;  (** execution order *)
  arrays : array_info array;
  inputs : int array;  (** func id per input index *)
  output_arrays : (int * int) list;  (** pipeline output func id → array *)
}

val build :
  Repro_ir.Pipeline.t -> opts:Options.t -> n:int ->
  params:(string -> float) -> t
(** Runs the full optimization pipeline of Fig. 4 at problem size [n].
    @raise Invalid_argument on malformed pipelines or unbound params. *)

(** {2 Introspection (Table 3 / Fig. 6 style reporting)} *)

val group_count : t -> int
val array_count : t -> int
val total_array_bytes : t -> int
val scratch_bytes_per_thread : t -> int
(** Worst simultaneous scratch footprint over groups (one thread's). *)

val member_count : t -> int

val summary : Format.formatter -> t -> unit
(** Prints groups, members, storage mapping and tile shapes — the
    Fig. 6 style dump. *)

val digest : t -> string
(** Hex fingerprint of the {!summary} dump: two plans with the same
    pipeline, options and storage mapping digest identically.  Memoized
    per plan ([uid]), so per-cycle consumers (metrics documents, the
    flight recorder) pay the formatting cost once. *)
