(* mg_served: the multigrid solver daemon.

   Accepts length-framed JSON solve requests (see Repro_mg.Serve for the
   codec and the admission/fairness machinery) on stdin/stdout, or on a
   TCP port with --listen, and answers each with a typed status frame.
   A request frame may carry an extra "id" field; it is echoed verbatim
   in the response frame so clients can correlate out-of-order answers.

   Exit codes: 0 on clean shutdown (EOF / all connections closed),
   2 on usage errors. *)

open Repro_mg
module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Json = Repro_runtime.Json
open Cmdliner

(* One writer at a time per output channel: responses complete on worker
   threads in any order, and frames must never interleave. *)
let locked_write mu oc json =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () -> Serve.write_frame oc json)

let with_id id json =
  match (id, json) with
  | None, j -> j
  | Some id, Json.Obj fields -> Json.Obj (("id", id) :: fields)
  | Some _, j -> j

(* Serve one framed connection: parse → submit → answer from a small
   responder thread, so a slow solve never blocks reading the next
   request (that is the admission queue's job). *)
let serve_channel server ic oc =
  let wmu = Mutex.create () in
  let responders = ref [] in
  let rec loop () =
    match Serve.read_frame ic with
    | None -> ()
    | Some (Error msg) ->
      locked_write wmu oc
        (Json.Obj
           [ ("status", Json.Str "invalid");
             ("code", Json.num 2);
             ("detail", Json.Str msg) ]);
      (* framing is broken; stop reading this connection *)
      ()
    | Some (Ok j) ->
      let id = Json.member "id" j in
      (match Serve.request_of_json j with
       | Error msg ->
         locked_write wmu oc
           (with_id id
              (Json.Obj
                 [ ("status", Json.Str "invalid");
                   ("code", Json.num 2);
                   ("detail", Json.Str msg) ]))
       | Ok rq ->
         let ticket = Serve.submit server rq in
         let th =
           Thread.create
             (fun () ->
               let resp = Serve.await ticket in
               locked_write wmu oc
                 (with_id id (Serve.response_to_json resp)))
             ()
         in
         responders := th :: !responders);
      loop ()
  in
  loop ();
  List.iter Thread.join !responders

let parse_tenant spec =
  (* NAME=rate:burst:queue_cap[:mem_budget] *)
  match String.index_opt spec '=' with
  | None -> Error (`Msg "tenant spec must be NAME=rate:burst:queue[:budget]")
  | Some i -> (
    let name = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    match String.split_on_char ':' rest with
    | rate :: burst :: cap :: budget ->
      (try
         let tc_mem_budget =
           match budget with
           | [] -> None
           | [ b ] -> (
             match Repro_core.Govern.bytes_of_string b with
             | Some v -> Some v
             | None -> failwith "bad budget")
           | _ -> failwith "too many fields"
         in
         Ok
           ( name,
             { Serve.tc_rate =
                 (if rate = "inf" then infinity else float_of_string rate);
               tc_burst = float_of_string burst;
               tc_queue_cap = int_of_string cap;
               tc_mem_budget } )
       with _ ->
         Error (`Msg (Printf.sprintf "bad tenant spec %S" spec)))
    | _ -> Error (`Msg "tenant spec must be NAME=rate:burst:queue[:budget]"))

let tenant_conv =
  Arg.conv
    ( parse_tenant,
      fun ppf (name, tc) ->
        Format.fprintf ppf "%s=%g:%g:%d" name tc.Serve.tc_rate tc.tc_burst
          tc.tc_queue_cap )

let run listen workers queue_cap max_cycles max_n domains allow_faults
    tenants incident_dir max_incidents telemetry backend =
  let backend =
    match Repro_core.Options.backend_of_string backend with
    | Some b -> b
    | None ->
      prerr_endline "backend must be interp, native or auto";
      exit 2
  in
  (* a daemon asked to run compiled kernels without a compiler should
     refuse at startup, not per request mid-traffic *)
  (match backend with
   | Repro_core.Options.Native when not (Repro_core.Native.available ()) ->
     prerr_endline
       "mg_served: --backend native, but no C compiler was found (tried \
        gcc, cc)";
     exit 2
   | _ -> ());
  if telemetry then Telemetry.set_enabled true;
  (match incident_dir with
   | Some dir ->
     Flightrec.set_enabled true;
     Flightrec.set_incident_dir (Some dir);
     Flightrec.set_max_incidents max_incidents
   | None -> ());
  let config =
    { Serve.default_config with
      Serve.sv_workers = max 1 workers;
      sv_queue_cap = queue_cap;
      sv_max_cycles = max_cycles;
      sv_max_n = max_n;
      sv_domains = domains;
      sv_allow_faults = allow_faults;
      sv_tenants = tenants;
      sv_backend = backend }
  in
  let server = Serve.create ~config () in
  (match listen with
   | None ->
     set_binary_mode_in stdin true;
     set_binary_mode_out stdout true;
     serve_channel server stdin stdout
   | Some port ->
     let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16;
     Printf.eprintf "mg_served: listening on 127.0.0.1:%d\n%!" port;
     let rec accept_loop () =
       let fd, _ = Unix.accept sock in
       let _th =
         Thread.create
           (fun () ->
             let ic = Unix.in_channel_of_descr fd in
             let oc = Unix.out_channel_of_descr fd in
             (try serve_channel server ic oc with _ -> ());
             try Unix.close fd with _ -> ())
           ()
       in
       accept_loop ()
     in
     accept_loop ());
  Serve.shutdown server;
  0

let listen_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:
          "Listen for framed connections on 127.0.0.1:$(docv) instead of \
           serving stdin/stdout.")

let workers_t =
  Arg.(
    value & opt int 1
    & info [ "workers" ]
        ~doc:
          "Executor threads. With 1 (the default) request deadlines are \
           enforced by the watchdog; more workers trade deadline precision \
           for throughput.")

let queue_cap_t =
  Arg.(
    value & opt int 256
    & info [ "queue-cap" ] ~doc:"Global bound on queued requests.")

let max_cycles_t =
  Arg.(
    value & opt int 64
    & info [ "max-cycles" ] ~doc:"Ceiling clamped onto per-request cycles.")

let max_n_t =
  Arg.(
    value & opt int 1024
    & info [ "max-n" ] ~doc:"Largest accepted problem size parameter N.")

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~doc:"Execution domains per solve runtime.")

let allow_faults_t =
  Arg.(
    value & flag
    & info [ "allow-faults" ]
        ~doc:
          "Honor the chaos-testing \"fault\" request field (off by default: \
           production servers refuse fault-injection requests).")

let tenants_t =
  Arg.(
    value
    & opt_all tenant_conv []
    & info [ "tenant" ] ~docv:"NAME=RATE:BURST:QUEUE[:BUDGET]"
        ~doc:
          "Per-tenant admission config: token rate (requests/s or \
           $(i,inf)), bucket burst, queue cap, and optional byte budget \
           (K/M/G suffixes). Repeatable.")

let incident_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "incident-dir" ] ~docv:"DIR"
        ~doc:
          "Enable the flight recorder and write incident reports for \
           faulted/quarantined requests into $(docv).")

let max_incidents_t =
  Arg.(
    value & opt int 32
    & info [ "max-incidents" ] ~doc:"Per-process cap on incident reports.")

let telemetry_t =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:"Enable telemetry counters and serve.* metrics recording.")

let backend_t =
  Arg.(
    value & opt string "interp"
    & info [ "backend" ]
        ~doc:
          "Execution backend for every admitted request's plan: \
           $(b,interp), $(b,native) (refuses to start without a C \
           compiler; a per-plan compile failure fails that request), or \
           $(b,auto) (native with a counted, incident-filing fallback to \
           the interpreter).  A deployment property of the daemon — \
           requests cannot select a backend.")

let cmd =
  let doc = "long-running multigrid solve daemon (multigrid-as-a-service)" in
  let exits =
    Cmd.Exit.info 0 ~doc:"on clean shutdown."
    :: Cmd.Exit.info 2 ~doc:"on usage errors."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "mg_served" ~doc ~exits)
    Term.(
      const run $ listen_t $ workers_t $ queue_cap_t $ max_cycles_t $ max_n_t
      $ domains_t $ allow_faults_t $ tenants_t $ incident_dir_t
      $ max_incidents_t $ telemetry_t $ backend_t)

let () = exit (Cmd.eval' cmd)
