(* The auto-tuner of §3.2.4: sweeps tile sizes (powers of two within the
   paper's ranges) crossed with grouping limits, for a chosen benchmark,
   and reports every configuration plus the best (Fig. 12 data).

   Example: autotune --dims 2 --cycle V --smoothing 10,0,0 --n 1024 *)

open Cmdliner
open Repro_mg
open Repro_core

let pow2_range lo hi =
  let rec go acc v = if v > hi then List.rev acc else go (v :: acc) (v * 2) in
  go [] lo

let run dims cycle smoothing n variant limits_arg =
  Gc.set
    { (Gc.get ()) with
      Gc.custom_major_ratio = 10000;
      Gc.custom_minor_ratio = 10000 };
  let shape =
    match String.uppercase_ascii cycle with
    | "V" -> Cycle.V
    | "W" -> Cycle.W
    | "F" -> Cycle.F
    | _ -> prerr_endline "cycle must be V, W or F"; exit 2
  in
  let n1, n2, n3 =
    match String.split_on_char ',' smoothing with
    | [ a; b; c ] -> (int_of_string a, int_of_string b, int_of_string c)
    | _ -> prerr_endline "smoothing must be n1,n2,n3"; exit 2
  in
  let cfg = Cycle.default ~dims ~shape ~smoothing:(n1, n2, n3) in
  let base =
    match Options.variant_of_string variant with
    | Some o -> o
    | None -> prerr_endline ("unknown variant " ^ variant); exit 2
  in
  let limits = List.map int_of_string (String.split_on_char ',' limits_arg) in
  (* paper ranges: 2D outer 8:64, inner 64:512; 3D outer 8:32, inner 64:256 *)
  let tiles =
    if dims = 2 then
      List.concat_map
        (fun a -> List.map (fun b -> [| a; b |]) (pow2_range 64 512))
        (pow2_range 8 64)
    else
      List.concat_map
        (fun a ->
          List.concat_map
            (fun b -> List.map (fun c -> [| a; b; c |]) (pow2_range 64 256))
            (pow2_range 8 32))
        (pow2_range 8 32)
  in
  let problem = Problem.poisson_random ~dims ~n ~seed:11 in
  Printf.printf "autotuning %s N=%d variant=%s: %d configurations\n%!"
    (Cycle.bench_name cfg) n variant
    (List.length limits * List.length tiles);
  let best = ref (infinity, "") in
  List.iter
    (fun limit ->
      List.iter
        (fun tile ->
          let opts =
            { (if dims = 2 then
                 Options.with_tiles base ~t2:tile ~t3:base.Options.tile_3d
               else Options.with_tiles base ~t2:base.Options.tile_2d ~t3:tile)
              with Options.group_size_limit = limit }
          in
          let t =
            Exec.with_runtime @@ fun rt ->
            try
              let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
              ignore
                (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
              (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ())
                .Solver.total_seconds
            with Invalid_argument _ -> Float.nan
          in
          let tag =
            Printf.sprintf "limit=%d tile=%s" limit
              (String.concat "x" (Array.to_list (Array.map string_of_int tile)))
          in
          if t < fst !best then best := (t, tag);
          Printf.printf "  %-28s %10.4f s/cycle\n%!" tag t)
        tiles)
    limits;
  let t, tag = !best in
  Printf.printf "best: %s  (%.4f s/cycle)\n" tag t

let dims_t = Arg.(value & opt int 2 & info [ "dims" ] ~doc:"Grid rank.")
let cycle_t = Arg.(value & opt string "V" & info [ "cycle" ] ~doc:"V, W or F.")

let smoothing_t =
  Arg.(value & opt string "10,0,0" & info [ "smoothing" ] ~doc:"n1,n2,n3.")

let n_t = Arg.(value & opt int 512 & info [ "n"; "size" ] ~doc:"Problem size N.")

let variant_t =
  Arg.(value & opt string "opt+" & info [ "variant" ] ~doc:"Optimizer preset.")

let limits_t =
  Arg.(
    value & opt string "1,2,4,6,8"
    & info [ "limits" ] ~doc:"Comma-separated grouping limits to sweep.")

let cmd =
  let doc = "auto-tune PolyMG tile sizes and grouping limits" in
  Cmd.v
    (Cmd.info "autotune" ~doc)
    Term.(
      const run $ dims_t $ cycle_t $ smoothing_t $ n_t $ variant_t $ limits_t)

let () = exit (Cmd.eval cmd)
