(* Compiler introspection: prints the pipeline DAG, the grouping and
   storage mapping (the Fig. 6 dump), the generated C (Fig. 8), or the
   plan "explain" — predicted plan metrics next to measured telemetry
   from a trial cycle.

   Examples:
     polymg_dump --what dag
     polymg_dump --what groups --variant opt+ --smoothing 4,4,4
     polymg_dump --what c --dims 2 --cycle V > vcycle.c
     polymg_dump --what explain --variant opt+ -n 64
     polymg_dump --what check --variant dtile-opt+ -n 64 *)

open Cmdliner
open Repro_mg
open Repro_core
module Telemetry = Repro_runtime.Telemetry

(* Predicted side: what the optimizer claims the plan will do — all
   numbers come from the Cost model (the same one behind --what cost and
   mg_solve --metrics, so the three can never disagree).  Storage savings
   are measured against ablated rebuilds of the same plan (the Fig. 11b
   methodology). *)
let explain_predicted pipeline cfg ~(opts : Options.t) ~n plan =
  let params = Cycle.params cfg ~n in
  let cost = Cost.of_plan plan in
  let sum f =
    Array.fold_left (fun a (s : Cost.stage) -> a + f s) 0 cost.Cost.stages
  in
  let computed = sum (fun s -> s.Cost.points) in
  let domain = sum (fun s -> s.Cost.domain) in
  Printf.printf "predicted:\n";
  Printf.printf "  groups %d  members %d  arrays %d\n" (Plan.group_count plan)
    (Plan.member_count plan) (Plan.array_count plan);
  let ab = Plan.total_array_bytes plan in
  let ab0 =
    Plan.total_array_bytes
      (Plan.build pipeline ~opts:{ opts with Options.array_reuse = false } ~n
         ~params)
  in
  Printf.printf "  full-array bytes %d (no array-reuse: %d, saved %.1f%%)\n" ab
    ab0
    (if ab0 = 0 then 0.0
     else 100.0 *. (1.0 -. (float_of_int ab /. float_of_int ab0)));
  let sb = Plan.scratch_bytes_per_thread plan in
  let sb0 =
    Plan.scratch_bytes_per_thread
      (Plan.build pipeline ~opts:{ opts with Options.scratch_reuse = false } ~n
         ~params)
  in
  Printf.printf
    "  scratch bytes/thread %d (no scratch-reuse: %d, saved %.1f%%)\n" sb sb0
    (if sb0 = 0 then 0.0
     else 100.0 *. (1.0 -. (float_of_int sb /. float_of_int sb0)));
  Printf.printf
    "  points computed %d  useful %d  expected redundant fraction %.2f%%\n"
    computed domain
    (100.0 *. ((float_of_int computed /. float_of_int domain) -. 1.0));
  let mb x = float_of_int x /. 1048576.0 in
  Printf.printf
    "  dram traffic %.2f MiB/cycle (read %.2f, write %.2f)  scratch %.2f MiB\n"
    (mb (Cost.total_bytes cost))
    (mb cost.Cost.dram_read) (mb cost.Cost.dram_write)
    (mb cost.Cost.scratch_traffic);
  Printf.printf "  flops %.2fM/cycle  arithmetic intensity %.3f flop/byte\n"
    (cost.Cost.flops /. 1e6) cost.Cost.intensity;
  Array.iteri
    (fun gi g ->
      let cg = cost.Cost.groups.(gi) in
      let ws =
        Printf.sprintf "working set %.2f MiB (%s)" (mb cg.Cost.working_set)
          cg.Cost.fits_in
      in
      match g with
      | Plan.G_tiled tg ->
        Printf.printf
          "  group %d: overlapped, %d members, %d tiles, redundancy %.2f%%, %s\n"
          tg.Plan.gid
          (Array.length tg.Plan.members)
          (Array.length tg.Plan.tiles)
          (100.0 *. cg.Cost.redundancy)
          ws
      | Plan.G_diamond dg ->
        let scheme =
          match dg.Plan.scheme with
          | Plan.Sched_diamond { sigma } ->
            Printf.sprintf "diamond sigma=%d" sigma
          | Plan.Sched_skewed { tau; sigma } ->
            Printf.sprintf "skewed tau=%d sigma=%d" tau sigma
        in
        Printf.printf
          "  group %d: time-tiled (%s), %d steps, redundancy 0%%, %s\n"
          dg.Plan.gid scheme
          (Array.length dg.Plan.steps)
          ws)
    plan.Plan.groups

(* Measured side: one instrumented trial cycle of the same variant. *)
let explain_measured cfg ~opts ~n =
  let problem = Problem.poisson ~dims:cfg.Cycle.dims ~n in
  Exec.with_runtime @@ fun rt ->
  let stepper = Solver.polymg_stepper cfg ~n ~opts ~rt in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  ignore (Solver.iterate stepper ~problem ~cycles:1 ~residuals:false ());
  Telemetry.set_enabled false;
  Printf.printf "measured (1 trial cycle):\n";
  Format.printf "%t@." (fun fmt -> Telemetry.report fmt);
  let v name =
    List.assoc_opt name (Telemetry.counters ()) |> Option.value ~default:0
  in
  let computed = v "exec.points_computed" in
  let redundant = v "exec.points_redundant" in
  Printf.printf "  measured redundant fraction %.2f%%  pool hit rate %s\n"
    (if computed = redundant then 0.0
     else
       100.0 *. float_of_int redundant /. float_of_int (computed - redundant))
    (let acq = v "mempool.acquire" in
     if acq = 0 then "n/a (pooling off)"
     else Printf.sprintf "%.0f%%" (100.0 *. float_of_int (v "mempool.hit") /. float_of_int acq));
  Telemetry.reset ()

(* Everything a mode action may need, resolved once in [run]. *)
type ctx = {
  cfg : Cycle.config;
  pipeline : Repro_ir.Pipeline.t;
  opts : Options.t;
  n : int;
  mem_budget : string option;
  domains : int;
}

let plan_of ctx =
  Plan.build ctx.pipeline ~opts:ctx.opts ~n:ctx.n
    ~params:(Cycle.params ctx.cfg ~n:ctx.n)

(* The single source of truth for --what: each mode's name, its slice of
   the --what help text, and its action.  The help string, the dispatch
   and the unknown-mode error are all derived from this table. *)
let modes : (string * string * (ctx -> unit)) list =
  [ ( "dag",
      "the pipeline DAG",
      fun ctx -> Format.printf "%a@." Repro_ir.Pipeline.pp ctx.pipeline );
    ( "groups",
      "the grouping and storage mapping",
      fun ctx -> Format.printf "%a@." Plan.summary (plan_of ctx) );
    ( "c",
      "the generated C driver",
      fun ctx -> print_string (C_emit.to_string (plan_of ctx)) );
    ( "cost",
      "the analytical per-stage bytes/FLOPs model",
      fun ctx ->
        Printf.printf "== cost: %s  n=%d  variant=%s ==\n"
          (Cycle.bench_name ctx.cfg) ctx.n (Options.name ctx.opts);
        Format.printf "%a@." Cost.pp (Cost.of_plan (plan_of ctx)) );
    ( "explain",
      "predicted plan metrics next to measured telemetry from a trial \
       cycle",
      fun ctx ->
        Printf.printf "== plan explain: %s  n=%d  variant=%s ==\n"
          (Cycle.bench_name ctx.cfg) ctx.n (Options.name ctx.opts);
        explain_predicted ctx.pipeline ctx.cfg ~opts:ctx.opts ~n:ctx.n
          (plan_of ctx);
        explain_measured ctx.cfg ~opts:ctx.opts ~n:ctx.n );
    ( "check",
      "run the Plan_check storage-safety pass and report violations",
      fun ctx ->
        let plan = plan_of ctx in
        match Plan_check.check plan with
        | Ok () ->
          Printf.printf
            "plan check: OK — %d groups, %d members, %d arrays storage-safe\n"
            (Plan.group_count plan) (Plan.member_count plan)
            (Plan.array_count plan)
        | Error issues ->
          List.iter (fun s -> Printf.printf "plan check: %s\n" s) issues;
          Printf.printf "plan check: FAILED — %d issue%s\n"
            (List.length issues)
            (if List.length issues = 1 then "" else "s");
          exit 1 );
    ( "budget",
      "the resource-governance degradation ladder: every rung's modelled \
       footprint and cost, the chosen rung under --mem-budget, and each \
       demotion's cost delta",
      fun ctx ->
        let mem_budget =
          match ctx.mem_budget with
          | None -> None
          | Some s -> (
            match Govern.bytes_of_string s with
            | Some b -> Some b
            | None ->
              Printf.eprintf "mem-budget: cannot parse %S\n" s;
              exit 2)
        in
        let opts = { ctx.opts with Options.mem_budget } in
        Printf.printf
          "== budget ladder: %s  n=%d  variant=%s  domains=%d ==\n"
          (Cycle.bench_name ctx.cfg) ctx.n (Options.name opts) ctx.domains;
        match
          Govern.decide ~domains:ctx.domains ctx.pipeline ~opts ~n:ctx.n
            ~params:(Cycle.params ctx.cfg ~n:ctx.n)
        with
        | Ok report -> Format.printf "@[<v>%a@]@." Govern.pp_report report
        | Error inf ->
          Format.printf "%a@." Govern.pp_infeasible inf;
          exit 5 );
    ( "conform",
      "compile and run the emitted-C driver, diffing its grid dump \
       against the engine; exits 1 on mismatch",
      fun ctx ->
        let plan = plan_of ctx in
        let name =
          Printf.sprintf "%s/%s" (Cycle.bench_name ctx.cfg)
            (Options.name ctx.opts)
        in
        let verdict = Conformance.c_equivalence plan in
        Format.printf "%a@." Conformance.pp_c_verdict (name, verdict);
        if not (Conformance.c_verdict_pass verdict) then exit 1 );
    ( "calibrate",
      "cost-model calibration: join the analytical per-stage roofline \
       predictions with profiler-measured times across shapes x \
       variants, reporting per-stage model error and the Spearman rank \
       correlation of predicted-vs-measured plan ordering",
      fun ctx ->
        let shapes = if ctx.n >= 64 then [ ctx.n / 2; ctx.n ] else [ ctx.n ] in
        let cal =
          Calibrate.run ctx.cfg ~n:ctx.n ~shapes ~domains:ctx.domains
        in
        Format.printf "%a@." Calibrate.pp cal );
    ( "health",
      "the convergence observatory on the selected cycle: per-cycle and \
       asymptotic convergence factors, per-level smoothing rates and \
       stall attribution over 8 reference cycles",
      fun ctx ->
        match Health.observe ctx.cfg ~n:ctx.n ~cycles:8 () with
        | h -> Format.printf "%a@." Health.pp h
        | exception Invalid_argument msg ->
          Printf.eprintf "health: %s\n" msg;
          exit 2 ) ]

let mode_names = String.concat ", " (List.map (fun (m, _, _) -> m) modes)

let run dims cycle smoothing levels n variant what mem_budget domains =
  let shape =
    match String.uppercase_ascii cycle with
    | "V" -> Cycle.V
    | "W" -> Cycle.W
    | "F" -> Cycle.F
    | _ -> prerr_endline "cycle must be V, W or F"; exit 2
  in
  let n1, n2, n3 =
    match String.split_on_char ',' smoothing with
    | [ a; b; c ] -> (int_of_string a, int_of_string b, int_of_string c)
    | _ -> prerr_endline "smoothing must be n1,n2,n3"; exit 2
  in
  let cfg =
    { (Cycle.default ~dims ~shape ~smoothing:(n1, n2, n3)) with
      Cycle.levels }
  in
  let pipeline = Cycle.build cfg in
  let opts =
    match Options.variant_of_string variant with
    | Some o -> o
    | None -> prerr_endline ("unknown variant " ^ variant); exit 2
  in
  let ctx = { cfg; pipeline; opts; n; mem_budget; domains } in
  match List.find_opt (fun (m, _, _) -> m = what) modes with
  | Some (_, _, action) -> action ctx
  | None ->
    Printf.eprintf "unknown --what %S: must be one of %s\n" what mode_names;
    exit 2

let dims_t = Arg.(value & opt int 2 & info [ "dims" ] ~doc:"Grid rank.")
let cycle_t = Arg.(value & opt string "V" & info [ "cycle" ] ~doc:"V, W or F.")

let smoothing_t =
  Arg.(value & opt string "4,4,4" & info [ "smoothing" ] ~doc:"n1,n2,n3.")

let levels_t = Arg.(value & opt int 4 & info [ "levels" ] ~doc:"Levels.")
let n_t = Arg.(value & opt int 64 & info [ "n"; "size" ] ~doc:"Problem size N.")

let variant_t =
  Arg.(value & opt string "opt+" & info [ "variant" ] ~doc:"Optimizer preset.")

let what_t =
  let doc =
    (* derived from the mode table so help can never drift from dispatch *)
    "What to print: "
    ^ String.concat "; "
        (List.map (fun (m, desc, _) -> m ^ " (" ^ desc ^ ")") modes)
    ^ "."
  in
  Arg.(value & opt string "groups" & info [ "what" ] ~doc)

let mem_budget_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "mem-budget" ] ~docv:"BYTES"
        ~doc:
          "Byte budget for --what budget (suffixes K/M/G, binary); \
           without it the ladder is modelled but nothing is demoted.")

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:"Worker domains assumed by the footprint model's scratch term.")

let cmd =
  let doc = "inspect PolyMG pipelines, groupings and generated code" in
  Cmd.v
    (Cmd.info "polymg_dump" ~doc)
    Term.(
      const run $ dims_t $ cycle_t $ smoothing_t $ levels_t $ n_t $ variant_t
      $ what_t $ mem_budget_t $ domains_t)

let () = exit (Cmd.eval cmd)
