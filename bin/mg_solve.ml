(* Command-line multigrid solver: the end-to-end driver a user runs.

   Examples:
     mg_solve --dims 2 --cycle V --n 256 --cycles 10
     mg_solve --dims 3 --cycle W --smoothing 10,0,0 --variant dtile-opt+
     mg_solve --dims 2 --cycle F --levels 6 --variant handopt --verbose
     mg_solve --guard --tol 1e-9 --max-cycles 40 --variant opt+ *)

open Cmdliner
open Repro_mg
open Repro_core
module Telemetry = Repro_runtime.Telemetry
module Flightrec = Repro_runtime.Flightrec
module Json = Repro_runtime.Json

let print_stats stats =
  List.iter
    (fun (s : Solver.cycle_stats) ->
      Printf.printf "  cycle %2d: residual %.6e  (%.4fs)%s\n" s.Solver.cycle
        s.Solver.residual s.Solver.seconds
        (if s.Solver.status = Solver.Ok then ""
         else "  [" ^ Solver.status_name s.Solver.status ^ "]"))
    stats

let print_status_summary stats =
  let count st =
    List.length (List.filter (fun s -> s.Solver.status = st) stats)
  in
  Printf.printf "status: ok=%d nan=%d diverged=%d stagnated=%d\n"
    (count Solver.Ok) (count Solver.Nan) (count Solver.Diverged)
    (count Solver.Stagnated)

let run dims cycle smoothing levels n variant backend cycles domains verbose
    profile trace metrics tol max_cycles guard no_fallback poison mem_budget
    deadline conform health no_flightrec incident_dir checkpoint_dir
    checkpoint_every resume =
  Gc.set
    { (Gc.get ()) with
      Gc.custom_major_ratio = 10000;
      Gc.custom_minor_ratio = 10000 };
  let shape =
    match String.uppercase_ascii cycle with
    | "V" -> Cycle.V
    | "W" -> Cycle.W
    | "F" -> Cycle.F
    | _ ->
      prerr_endline "cycle must be V, W or F";
      exit 2
  in
  let n1, n2, n3 =
    match String.split_on_char ',' smoothing with
    | [ a; b; c ] -> (int_of_string a, int_of_string b, int_of_string c)
    | _ ->
      prerr_endline "smoothing must be n1,n2,n3";
      exit 2
  in
  let cfg =
    { (Cycle.default ~dims ~shape ~smoothing:(n1, n2, n3)) with
      Cycle.levels }
  in
  let n =
    match n with
    | Some n -> n
    | None -> Cycle.min_n cfg * 8
  in
  if n mod (1 lsl (levels - 1)) <> 0 then begin
    Printf.eprintf "N=%d must be divisible by 2^(levels-1)=%d\n" n
      (1 lsl (levels - 1));
    exit 2
  end;
  if conform then begin
    (* differential oracle on the selected cycle: every plan variant and
       the hand-optimized baselines in lockstep against the naive plan *)
    Printf.printf "%s  N=%d  conformance oracle (%d cycles)\n"
      (Cycle.bench_name cfg) n cycles;
    let case = Conformance.oracle_case cfg ~n ~cycles () in
    Format.printf "%a@." Conformance.pp_case case;
    exit (if Conformance.case_pass case then 0 else 1)
  end;
  let mem_budget =
    match mem_budget with
    | None -> None
    | Some s -> (
      match Govern.bytes_of_string s with
      | Some b -> Some b
      | None ->
        Printf.eprintf
          "mem-budget: cannot parse %S (expected BYTES, optionally with a \
           K/M/G suffix)\n"
          s;
        exit 2)
  in
  let backend =
    match Options.backend_of_string backend with
    | Some b -> b
    | None ->
      Printf.eprintf "backend must be interp, native or auto, not %s\n"
        backend;
      exit 2
  in
  (* Governance knobs and the execution backend ride on the options
     record, so every plan built from them (including demoted ladder
     rungs) inherits them. *)
  let polymg_opts =
    Option.map
      (fun o -> { o with Options.mem_budget; deadline; backend })
      (Options.variant_of_string variant)
  in
  if (mem_budget <> None || deadline <> None) && polymg_opts = None then begin
    Printf.eprintf
      "--mem-budget/--deadline require a PolyMG variant \
       (naive|opt|opt+|dtile-opt+), not %s\n"
      variant;
    exit 2
  end;
  if backend <> Options.Interp && polymg_opts = None then begin
    Printf.eprintf
      "--backend %s requires a PolyMG variant \
       (naive|opt|opt+|dtile-opt+), not %s\n"
      (Options.backend_name backend) variant;
    exit 2
  end;
  (* The flight recorder is always-on (bounded per-domain rings, one
     flag test per event site when idle); --no-flightrec exists for the
     overhead gate in the bench harness. *)
  Flightrec.set_enabled (not no_flightrec);
  Flightrec.set_incident_dir incident_dir;
  let problem = Problem.poisson ~dims ~n in
  let guard_mode = guard || tol <> None in
  let governed_mode = mem_budget <> None && not guard_mode in
  (* ---- durable checkpoint/restart ---------------------------------- *)
  if resume && checkpoint_dir = None then begin
    prerr_endline "--resume requires --checkpoint-dir";
    exit 2
  end;
  if checkpoint_every < 1 then begin
    prerr_endline "--checkpoint-every must be >= 1";
    exit 2
  end;
  (* The active plan digest is needed before the solve starts: resume
     compares it against the checkpoint's, and the sink stamps it into
     every generation.  PolyMG plans are built once here and reused by
     the solve paths below (handopt baselines have no plan). *)
  let preplan, ck_digest =
    match checkpoint_dir with
    | None -> (None, None)
    | Some _ -> (
      match polymg_opts with
      | Some opts ->
        let p = Solver.polymg_plan cfg ~n ~opts in
        (Some p, Some (Plan.digest p))
      | None -> (None, Some "handopt"))
  in
  (* note the plan before any resume incident can fire, so a
     checkpoint-rejected or resume-replan report carries the digest *)
  (match ck_digest with
   | Some d -> Flightrec.note_plan ~digest:d ~variant
   | None -> ());
  let resume_state =
    match (resume, checkpoint_dir) with
    | true, Some dir -> (
      match Checkpoint.load_latest ~dir with
      | Error msg ->
        Printf.eprintf "resume: %s\n" msg;
        exit 6
      | Ok r ->
        let st = r.Checkpoint.state in
        if st.Checkpoint.dims <> dims || st.Checkpoint.n <> n then begin
          Printf.eprintf
            "resume: checkpoint is for dims=%d N=%d, not dims=%d N=%d\n"
            st.Checkpoint.dims st.Checkpoint.n dims n;
          exit 6
        end;
        let cur = Option.get ck_digest in
        if st.Checkpoint.plan_digest <> cur then begin
          (* configuration drifted since the checkpoint: re-plan under
             the current options, keep the restored iterate *)
          if Flightrec.on () then
            Flightrec.emit
              (Flightrec.Resume_replan
                 { old_digest = st.Checkpoint.plan_digest;
                   new_digest = cur });
          ignore
            (Flightrec.incident ~kind:"resume-replan"
               ~cycle:st.Checkpoint.cycle
               ~detail:
                 [ ("checkpoint_digest", Json.Str st.Checkpoint.plan_digest);
                   ("checkpoint_variant", Json.Str st.Checkpoint.variant);
                   ("current_digest", Json.Str cur);
                   ("current_variant", Json.Str variant) ]
               ())
        end;
        Printf.printf "resume: generation %d (cycle %d, residual %.6e)%s\n"
          r.Checkpoint.gen st.Checkpoint.cycle st.Checkpoint.residual
          (match r.Checkpoint.rejected with
           | [] -> ""
           | l ->
             Printf.sprintf "  [%d corrupt generation(s) skipped]"
               (List.length l));
        Some st)
    | _ -> None
  in
  let problem =
    match resume_state with
    | Some st -> { problem with Problem.v = st.Checkpoint.v }
    | None -> problem
  in
  let start_cycle =
    match resume_state with
    | Some st -> st.Checkpoint.cycle + 1
    | None -> 1
  in
  let sink =
    match checkpoint_dir with
    | None -> None
    | Some dir ->
      let ccfg =
        { Checkpoint.dir;
          every =
            Checkpoint.effective_every ~every:checkpoint_every ~deadline;
          keep = Checkpoint.default_keep }
      in
      Some
        (Checkpoint.sink ccfg ~dims ~n ~variant
           ~plan_digest:(Option.get ck_digest)
           ?history_prefix:
             (Option.map (fun st -> st.Checkpoint.history) resume_state)
           ())
  in
  (* SIGINT/SIGTERM: flush a final generation plus an incident report,
     then die with the conventional 128+signum status *)
  (match sink with
   | None -> ()
   | Some s ->
     let on_signal signum =
       let flushed = s.Checkpoint.flush () in
       ignore
         (Flightrec.incident ~kind:"interrupted"
            ~detail:
              [ ( "signal",
                  Json.Str
                    (if signum = Sys.sigint then "SIGINT" else "SIGTERM") );
                ( "checkpoint",
                  match flushed with
                  | Some p -> Json.Str p
                  | None -> Json.Null ) ]
            ());
       exit (128 + if signum = Sys.sigint then 2 else 15)
     in
     Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal));
  let on_accept = Option.map (fun s -> s.Checkpoint.on_accept) sink in
  (* ------------------------------------------------------------------ *)
  Printf.printf "%s  N=%d  levels=%d  variant=%s  domains=%d%s\n"
    (Cycle.bench_name cfg) n levels variant domains
    (if poison then "  poison=on" else "");
  if profile || trace <> None || metrics <> None then begin
    Telemetry.reset ();
    Telemetry.set_enabled true
  end;
  let exit_code = ref 0 in
  let plan_ref = ref None in
  let incident_deadline e =
    ignore
      (Flightrec.incident ~kind:"deadline"
         ~detail:[ ("exception", Json.Str (Printexc.to_string e)) ]
         ())
  in
  let cycle_budget =
    if guard_mode then Option.value max_cycles ~default:cycles else cycles
  in
  let cycles_left = cycle_budget - start_cycle + 1 in
  let stats, v, total_seconds =
    match resume_state with
    | Some st when cycles_left < 1 ->
      (* the checkpoint already covers the requested budget *)
      Printf.printf "resume: cycle %d already meets the %d-cycle budget\n"
        st.Checkpoint.cycle cycle_budget;
      (st.Checkpoint.history, st.Checkpoint.v, 0.0)
    | _ ->
    try
    if governed_mode then begin
      (* Budgeted solve: Govern picks the ladder rung, Mempool enforces
         the budget, Budget_exceeded demotes instead of aborting. *)
      let opts = Option.get polymg_opts in
      match
        Solver.solve_governed cfg ~n ~opts ~domains ~poison
          ~cycles:cycles_left ~start_cycle ?on_accept ~problem ()
      with
      | exception (Repro_runtime.Watchdog.Deadline_exceeded _ as e) ->
        incident_deadline e;
        Telemetry.set_enabled false;
        Printf.eprintf "deadline: %s\n" (Printexc.to_string e);
        exit 4
      | Error inf ->
        Telemetry.set_enabled false;
        Format.eprintf "govern: %a@." Govern.pp_infeasible inf;
        exit 5
      | Ok g ->
        Telemetry.set_enabled false;
        let executed = g.Solver.g_executed in
        plan_ref := Some executed.Govern.plan;
        Format.printf "govern: @[<v>%a@]@?" Govern.pp_report
          g.Solver.g_report;
        if g.Solver.g_runtime_demotions > 0 then
          Printf.printf
            "govern: %d runtime demotion(s); executed rung %s\n"
            g.Solver.g_runtime_demotions executed.Govern.rname;
        if verbose then Format.printf "%a@." Plan.summary executed.Govern.plan;
        let r = g.Solver.g_result in
        print_stats r.Solver.stats;
        (r.Solver.stats, r.Solver.v, r.Solver.total_seconds)
    end
    else
      Exec.with_runtime ~domains ~poison @@ fun rt ->
      (* budget under guard: the pool raises Budget_exceeded, the guard
         sees a crash fault and retries on the unpooled naive fallback *)
      (match polymg_opts with
       | Some o when o.Options.pool && o.Options.mem_budget <> None ->
         Repro_runtime.Mempool.set_budget rt.Exec.pool o.Options.mem_budget
       | Some _ | None -> ());
      let stepper =
        match variant with
        | "handopt" ->
          Flightrec.note_plan ~digest:"handopt" ~variant;
          Handopt.stepper (Handopt.create cfg ~n ~par:rt.Exec.par ())
        | "handopt+pluto" ->
          Flightrec.note_plan ~digest:"handopt" ~variant;
          Handopt.stepper
            (Handopt.create cfg ~n ~par:rt.Exec.par
               ~smoothing:(Handopt.Pluto { sigma = 16 })
               ())
        | v -> (
          match polymg_opts with
          | Some opts ->
            (* build once; the metrics report reuses the same plan so its
               stage names match the executed spans (the checkpoint path
               may already have built it for the digest) *)
            let plan =
              match preplan with
              | Some p -> p
              | None -> Solver.polymg_plan cfg ~n ~opts
            in
            plan_ref := Some plan;
            if verbose then Format.printf "%a@." Plan.summary plan;
            Solver.plan_stepper plan ~rt
          | None ->
            Printf.eprintf
              "unknown variant %s \
               (naive|opt|opt+|dtile-opt+|handopt|handopt+pluto)\n"
              v;
            exit 2)
      in
      let fallback_opts =
        match polymg_opts with
        | Some opts -> Guard.fallback_opts opts
        | None ->
          Options.naive (* handopt variants fall back to the naive plan *)
      in
      if guard_mode then begin
        let policy =
          { Guard.default_policy with
            Guard.tol;
            Guard.max_cycles = Option.value max_cycles ~default:cycles }
        in
        let fallback =
          if no_fallback then None
          else
            Some
              (fun () -> Solver.polymg_stepper cfg ~n ~opts:fallback_opts ~rt)
        in
        let checkpoint =
          Option.map
            (fun s ->
              { Guard.ck_accept = s.Checkpoint.on_accept;
                ck_restore = s.Checkpoint.restore })
            sink
        in
        let r =
          Guard.run ~policy ?checkpoint ~start_cycle ~primary:stepper
            ?fallback ~problem ()
        in
        Telemetry.set_enabled false;
        print_stats r.Guard.stats;
        List.iter
          (fun (e : Guard.event) ->
            Printf.printf "  guard: cycle %d: %s fault — %s\n" e.Guard.cycle
              (Guard.fault_name e.Guard.fault)
              (Guard.action_name e.Guard.action))
          r.Guard.events;
        Printf.printf "guard: %s  residual %.6e  (%d fallback cycle%s)\n"
          (Guard.outcome_name r.Guard.outcome)
          r.Guard.residual r.Guard.fallback_cycles
          (if r.Guard.fallback_cycles = 1 then "" else "s");
        (match r.Guard.outcome with
         | Guard.Faulted _ -> exit_code := 4
         | Guard.Converged | Guard.Exhausted | Guard.Stagnated ->
           if
             List.exists
               (fun (e : Guard.event) ->
                 e.Guard.action = Guard.Quarantined_primary)
               r.Guard.events
           then exit_code := 3);
        (r.Guard.stats, r.Guard.v, r.Guard.total_seconds)
      end
      else begin
        let r =
          try
            Solver.iterate stepper ~problem ~cycles:cycles_left ~start_cycle
              ?on_accept ()
          with Repro_runtime.Watchdog.Deadline_exceeded _ as e ->
            incident_deadline e;
            Telemetry.set_enabled false;
            Printf.eprintf "deadline: %s\n" (Printexc.to_string e);
            exit 4
        in
        Telemetry.set_enabled false;
        print_stats r.Solver.stats;
        (r.Solver.stats, r.Solver.v, r.Solver.total_seconds)
      end
    with
    | Native.Unavailable msg ->
      (* forced --backend native could not run (no compiler, unemittable
         plan, or a compile failure): a deliberate request, a clean
         refusal — never a silent interpreter downgrade *)
      ignore
        (Flightrec.incident ~kind:"native-unavailable"
           ~detail:[ ("reason", Json.Str msg) ]
           ());
      Telemetry.set_enabled false;
      Printf.eprintf "native: %s\n" msg;
      exit 7
    | e ->
      (* any anomaly the structured paths did not already report *)
      ignore
        (Flightrec.incident ~kind:"exception"
           ~detail:[ ("exception", Json.Str (Printexc.to_string e)) ]
           ());
      raise e
  in
  (* final checkpoint: the last accepted cycle is durable even when the
     cadence did not land on it *)
  (match sink with
   | None -> ()
   | Some s -> (
     match s.Checkpoint.flush () with
     | Some path ->
       if verbose then Printf.printf "checkpoint: final flush -> %s\n" path
     | None -> ()));
  let err = Verify.error_l2 ~v ~exact:problem.Problem.exact in
  Printf.printf "total %.4fs; error vs continuous solution: %.6e\n"
    total_seconds err;
  (* Convergence observatory: a sequential reference probe of the same
     cycle, reported on demand and embedded in the metrics document. *)
  let health_report =
    if health || metrics <> None then
      match Health.observe cfg ~n ~cycles ~problem () with
      | h -> Some h
      | exception Invalid_argument msg ->
        if health then Printf.eprintf "health: %s\n" msg;
        None
    else None
  in
  (match (health, health_report) with
  | true, Some h -> Format.printf "%a@." Health.pp h
  | _ -> ());
  if profile then begin
    print_status_summary stats;
    Format.printf "%t@." (fun fmt -> Telemetry.report fmt);
    let span_name = if guard_mode then "guard.cycle" else "solver.cycle" in
    let span_total = float_of_int (Telemetry.span_total_ns span_name) /. 1e9 in
    Printf.printf "profile: cycle-span total %.4fs vs wall-clock %.4fs (%+.2f%%)\n"
      span_total total_seconds
      (if total_seconds = 0.0 then 0.0
       else 100.0 *. (span_total -. total_seconds) /. total_seconds)
  end;
  (match trace with
   | Some path -> (
     try
       Telemetry.write_chrome_trace path;
       Printf.printf "trace: wrote %s (load in chrome://tracing or Perfetto)\n"
         path
     with Sys_error msg ->
       Printf.eprintf "trace: cannot write %s\n" msg;
       exit 1)
   | None -> ());
  (match metrics with
   | None -> ()
   | Some path ->
     let plan = !plan_ref in
     let cost = Option.map Cost.of_plan plan in
     let roofline = Repro_runtime.Roofline.get () in
     Repro_runtime.Metrics.reset ();
     Repro_runtime.Metrics.ingest_spans (Telemetry.spans ());
     let doc =
       Perf_report.build ~health:health_report ~cfg ~n ~variant ~domains
         ~cost ~plan ~stats ~total_seconds ~spans:(Telemetry.spans ())
         ~counters:(Telemetry.counters ()) ~roofline
     in
     (try Perf_report.write ~path doc
      with Sys_error msg ->
        Printf.eprintf "metrics: cannot write %s\n" msg;
        exit 1);
     Printf.printf
       "metrics: wrote %s (roofline %.1f GB/s, %.1f GFLOP/s)\n" path
       roofline.Repro_runtime.Roofline.bandwidth_gbs
       roofline.Repro_runtime.Roofline.gflops);
  !exit_code

let dims_t =
  Arg.(value & opt int 2 & info [ "dims" ] ~doc:"Grid rank (2 or 3).")

let cycle_t =
  Arg.(value & opt string "V" & info [ "cycle" ] ~doc:"Cycle shape: V, W or F.")

let smoothing_t =
  Arg.(
    value & opt string "4,4,4"
    & info [ "smoothing" ] ~doc:"Smoothing steps n1,n2,n3 (pre,coarse,post).")

let levels_t =
  Arg.(value & opt int 4 & info [ "levels" ] ~doc:"Multigrid levels.")

let n_t =
  Arg.(
    value & opt (some int) None
    & info [ "n"; "size" ] ~doc:"Problem size parameter N (interior is N-1).")

let variant_t =
  Arg.(
    value & opt string "opt+"
    & info [ "variant" ]
        ~doc:"naive | opt | opt+ | dtile-opt+ | handopt | handopt+pluto.")

let backend_t =
  Arg.(
    value & opt string "interp"
    & info [ "backend" ]
        ~doc:
          "Execution backend for PolyMG plans: $(b,interp) runs the plan \
           through the engine's interpreter; $(b,native) compiles the \
           plan's emitted C to a dlopen'd kernel (exits 7 when no C \
           compiler is available or the plan cannot be compiled); \
           $(b,auto) prefers native and falls back to the interpreter, \
           counting the fallback and filing a native-fallback incident.")

let cycles_t =
  Arg.(value & opt int 5 & info [ "cycles" ] ~doc:"Multigrid cycles to run.")

let domains_t =
  Arg.(value & opt int 1 & info [ "domains" ] ~doc:"Worker domains.")

let verbose_t =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print the optimized plan.")

let profile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Record telemetry and print the per-stage/per-group profile.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON file of the run.")

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a self-describing JSON metrics document for the run: \
           config, plan digest, per-stage predicted bytes/FLOPs vs \
           measured time against the machine roofline, residual history \
           and runtime counters.")

let tol_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "tol" ]
        ~doc:
          "Stop when the L2 residual reaches this tolerance (implies \
           guarded execution).")

let max_cycles_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cycles" ]
        ~doc:
          "Cycle budget under guarded execution (defaults to --cycles).")

let guard_t =
  Arg.(
    value & flag
    & info [ "guard" ]
        ~doc:
          "Guarded execution: detect NaN/divergence per cycle, roll back \
           to the last good iterate and retry on a naive-plan fallback.")

let no_fallback_t =
  Arg.(
    value & flag
    & info [ "no-fallback" ]
        ~doc:"Under --guard, stop on the first fault instead of falling \
              back to the naive plan.")

let poison_t =
  Arg.(
    value & flag
    & info [ "poison" ]
        ~doc:
          "Poison pooled buffers with signaling NaNs and canary guard \
           words (debug aid for storage bugs).")

let mem_budget_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "mem-budget" ] ~docv:"BYTES"
        ~doc:
          "Byte budget for the runtime working footprint (suffixes K/M/G, \
           binary).  Planning walks the degradation ladder (dtile-opt+ → \
           opt+ → opt → naive order of aggressiveness) to the best rung \
           whose modelled footprint fits, reports every demotion, and \
           arms pool budget enforcement at run time.  Exits with 5 when \
           no rung fits.")

let deadline_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Soft per-stage (plan group) deadline.  A stage running past it \
           is cancelled cooperatively at the next tile boundary; under \
           --guard the trip is a recoverable fault (rollback + fallback \
           retry), otherwise the solve stops with exit code 4.")

let conform_t =
  Arg.(
    value & flag
    & info [ "conform" ]
        ~doc:
          "Instead of solving, run the conformance oracle on the selected \
           cycle: every plan variant and the hand-optimized baselines in \
           lockstep against the naive plan, pairwise within the documented \
           tolerance budgets (see TESTING.md).  Exits 1 on any mismatch.")

let health_t =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "After the solve, run the convergence observatory: a sequential \
           reference cycle instrumented per level, reporting per-cycle and \
           asymptotic convergence factors, per-level smoothing rates, and \
           stall attribution (which level stopped reducing its residual, \
           and when).  The same block is embedded in --metrics output.")

let no_flightrec_t =
  Arg.(
    value & flag
    & info [ "no-flightrec" ]
        ~doc:
          "Disable the flight recorder (always-on bounded ring buffer of \
           structured runtime events; see README Observability).  With \
           the recorder off no incident reports are written.")

let incident_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "incident-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for incident reports.  On any anomaly (guard fault, \
           quarantine, deadline stop, budget infeasibility, uncaught \
           exception) a self-contained JSON report — event tail, plan \
           digest, policy, residual history, counters, environment — is \
           written there and summarized on stderr.")

let checkpoint_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for durable solver checkpoints.  Every \
           --checkpoint-every accepted cycles the solver state (iterate, \
           residual history, plan digest) is written atomically as a new \
           generation (ckpt-NNNNNN.snap, CRC-framed; see README Crash \
           safety); the last 3 generations are retained and a final \
           generation is flushed at solve end and on SIGINT/SIGTERM.")

let checkpoint_every_t =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Checkpoint cadence in accepted cycles (default 1).  Under a \
           --deadline the cadence is clamped to every cycle, so a \
           deadline stop never loses more than one cycle of work.")

let resume_t =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the newest verifiable generation in \
           --checkpoint-dir: corrupt (torn, truncated, bit-flipped) \
           generations are detected by CRC framing and skipped for older \
           ones.  The restored cycle count continues toward --cycles (or \
           --max-cycles under --guard).  If the stored plan digest \
           differs from the current configuration the solve re-plans and \
           records a resume-replan incident.  Exits 6 when no usable \
           generation exists.")

let cmd =
  let doc = "solve the Poisson problem with PolyMG geometric multigrid" in
  let exits =
    Cmd.Exit.info 3
      ~doc:
        "guarded execution quarantined the primary plan; the solve \
         finished on the fallback plan."
    :: Cmd.Exit.info 4
         ~doc:
           "fault-stop: an unrecoverable fault (or a tripped --deadline \
            outside guarded mode) stopped the solve."
    :: Cmd.Exit.info 5
         ~doc:
           "memory budget infeasible: no degradation-ladder rung fits \
            --mem-budget."
    :: Cmd.Exit.info 6
         ~doc:
           "resume failed: --checkpoint-dir holds no usable checkpoint \
            generation (or the checkpoint is for a different problem \
            size)."
    :: Cmd.Exit.info 7
         ~doc:
           "native backend unavailable: --backend native was forced but \
            no C compiler was found, the plan is not compilable, or \
            compilation failed."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "mg_solve" ~doc ~exits)
    Term.(
      const run $ dims_t $ cycle_t $ smoothing_t $ levels_t $ n_t $ variant_t
      $ backend_t $ cycles_t $ domains_t $ verbose_t $ profile_t $ trace_t
      $ metrics_t $ tol_t $ max_cycles_t $ guard_t $ no_fallback_t $ poison_t
      $ mem_budget_t $ deadline_t $ conform_t $ health_t $ no_flightrec_t
      $ incident_dir_t $ checkpoint_dir_t $ checkpoint_every_t $ resume_t)

let () = exit (Cmd.eval' cmd)
